"""Figure 7 / §6.5: comparison with Biocellion on the cell-sorting model.

Biocellion is proprietary; the paper compares against Kang et al.'s
*published* numbers and so do we.  Procedure:

1. Run the cell-sorting model at a reachable scale on the virtual System C
   limited to 16 physical cores (the paper's small benchmark) and on the
   virtual System B with all 72 cores (the large benchmark).
2. Scale the measured per-iteration time linearly to the paper's agent
   counts (the engine is linear in agents past 10^5 — Figure 6).
3. Compare agents-per-core-second against Biocellion's published numbers.
4. Reproduce Fig. 7b: the impact of each optimization group on both
   machine configurations, showing the memory optimizations matter more
   at higher core counts.
5. Validate Fig. 7a qualitatively via the homotypic-neighbor fraction.
"""

from __future__ import annotations

from repro.baselines.biocellion import BIOCELLION_PUBLISHED
from repro.bench.runner import run_benchmark
from repro.bench.stack import stack_params
from repro.bench.tables import ExperimentReport
from repro.parallel import SYSTEM_B, SYSTEM_C
from repro.simulations import get_simulation
from repro.simulations.cell_sorting import CellSorting

__all__ = ["run", "main"]

SCALES = {
    "small": dict(num_agents=6000, iterations=6, warmup=8, sorting_iterations=80),
    "medium": dict(num_agents=20_000, iterations=10, warmup=15, sorting_iterations=200),
}


def run(scale: str = "small") -> ExperimentReport:
    """Execute the experiment at the given scale; returns its report."""
    cfg = SCALES[scale]
    n = cfg["num_agents"]
    rows = []
    notes = []

    # --- Headline comparison on both machines.
    machines = [
        ("System C, 16 cores", SYSTEM_C, 16, None, BIOCELLION_PUBLISHED["small"]),
        ("System B, 72 cores", SYSTEM_B, 72, None, BIOCELLION_PUBLISHED["large"]),
    ]
    for label, spec, threads, domains, bc in machines:
        param = get_simulation("cell_sorting").default_param()
        res = run_benchmark("cell_sorting", n, cfg["iterations"], param=param,
                            spec=spec, num_threads=threads, num_domains=domains,
                            config=label, warmup_iterations=cfg["warmup"])
        # Linear scaling to the published agent count (Fig. 6 linearity).
        scaled_s_per_iter = res.virtual_s_per_iteration * (bc.num_agents / n)
        ours_throughput = bc.num_agents / (scaled_s_per_iter * threads)
        ratio = ours_throughput / bc.agent_iterations_per_core_second
        rows.append(
            ["headline", label, bc.label, scaled_s_per_iter,
             bc.seconds_per_iteration, round(ratio, 2)]
        )
        notes.append(
            f"{label}: per-core efficiency vs Biocellion = {ratio:.2f}x "
            f"(paper: {'4.14x' if spec is SYSTEM_C else '9.64x'})"
        )

    # --- Fig. 7b: optimization impact on both machines.
    for label, spec, threads in [("System C/16", SYSTEM_C, 16),
                                 ("System B/72", SYSTEM_B, 72)]:
        base_time = None
        for cfg_label, param in stack_params():
            res = run_benchmark("cell_sorting", n, cfg["iterations"], param=param,
                                spec=spec, num_threads=threads, config=cfg_label,
                                warmup_iterations=cfg["warmup"])
            if base_time is None:
                base_time = res.virtual_seconds
            rows.append(
                ["fig7b", label, cfg_label, res.virtual_s_per_iteration,
                 res.virtual_seconds, round(base_time / res.virtual_seconds, 2)]
            )

    # --- Fig. 7a: the model actually sorts.
    sim = get_simulation("cell_sorting").build(min(n, 1000), seed=4)
    before = CellSorting.homotypic_fraction(sim)
    sim.simulate(cfg["sorting_iterations"])
    after = CellSorting.homotypic_fraction(sim)
    notes.append(
        f"fig7a sorting progress: homotypic neighbor fraction "
        f"{before:.3f} -> {after:.3f} over {cfg['sorting_iterations']} iterations"
    )
    rows.append(["fig7a", "homotypic_fraction", "before->after",
                 round(before, 3), round(after, 3), ""])

    return ExperimentReport(
        experiment="Figure 7",
        title="Biocellion cell-sorting comparison and optimization impact",
        headers=["panel", "machine", "config", "s_per_iter(scaled)",
                 "reference", "speedup"],
        rows=rows,
        notes=notes,
    )


def main() -> None:
    """Print the rendered report to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
