"""Batched agent-ops pipeline: stage-isolated agents/sec, before vs after.

Measures **wall-clock** execution of the same workloads with
``Param.batched_agent_ops`` off (the legacy dict-of-lists queue-merge
path with its per-commit UID rescan — the pre-pipeline baseline) and on
(staged columnar commits + cached behavior dispatch), isolating the
three stages the pipeline touches:

- **dispatch** — the per-behavior ``flatnonzero`` index scans, read from
  the ``agent_ops:dispatch_seconds`` counter (cached after the first
  scan per structural change when batched);
- **behaviors** — the full behavior-execution stage (includes dispatch);
- **commit** — the ``setup_teardown`` stage where queued additions and
  removals are applied (the staged fast-append path skips the UID
  rescan entirely).

Two population regimes bound the pipeline's effect:

- ``cell_proliferation`` — the Table-1 proliferation workload (grow +
  divide) built bench-side with *staggered* initial diameters: the
  registry lattice starts phase-locked (every cell divides in one wave,
  then idles at its cap), whereas staggering the diameters uniformly
  across the growth window desynchronizes the waves into steady
  per-step churn — commits every iteration, which is the regime the
  staging arenas exist for.  Mechanics is disabled (a microbench of the
  agent-ops data path, not the force kernels — mechanics is excluded
  from the metric either way).  Carries the headline criterion
  (>= 1.5x agents/sec on the touched stages).
- ``cell_clustering`` — the registry model, no structural changes after
  setup: commits are no-ops and only the dispatch cache can help
  (informational; mainly demonstrates the pipeline does not hurt a
  static workload).

Every workload runs both configurations from the same seed and diffs
the final state checksum — a speedup from a diverged run is
meaningless.  Agents/sec is agent-iterations processed divided by the
touched-stage (behaviors + commit) seconds, so the metric cannot be
inflated by stages the pipeline does not touch (mechanics, diffusion).

``python -m repro bench agent_ops`` writes ``BENCH_agent_ops.json``;
``--agents/--iterations/--out`` override.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.bench.tables import ExperimentReport
from repro.verify.snapshot import state_checksum

__all__ = ["run", "main", "run_agent_ops"]

SCALES = {
    "small": dict(agents=600, iterations=16, burn_in=2, repeats=3),
    "medium": dict(agents=2000, iterations=20, burn_in=2, repeats=3),
}

#: Stages the pipeline touches; their sum is the denominator of the
#: agents/sec metric.
PIPELINE_STAGES = ("behaviors", "setup_teardown")


def _measure(factory, iterations: int, burn_in: int, repeats: int,
             batched: bool) -> dict:
    """Best-of-``repeats`` timed run; returns the workload's JSON record."""
    best = None
    for _rep in range(max(repeats, 1)):
        sim = factory(batched)
        try:
            sim.simulate(burn_in)
            reg = sim.obs.registry
            dispatch = reg.counter("agent_ops:dispatch_seconds")
            stages0 = dict(sim.obs.stage_seconds())
            dispatch0 = dispatch.value
            agent_iterations = 0
            t0 = time.perf_counter()
            for _ in range(iterations):
                agent_iterations += sim.num_agents
                sim.simulate(1)
            wall = time.perf_counter() - t0
            stage_delta = {
                k: v - stages0.get(k, 0.0)
                for k, v in sim.obs.stage_seconds().items()
            }
            pipeline = sum(stage_delta.get(s, 0.0) for s in PIPELINE_STAGES)
            record = {
                "wall_seconds": wall,
                "pipeline_seconds": pipeline,
                "behaviors_seconds": stage_delta.get("behaviors", 0.0),
                "commit_seconds": stage_delta.get("setup_teardown", 0.0),
                "dispatch_seconds": dispatch.value - dispatch0,
                "agent_iterations": agent_iterations,
                "agents_per_sec": agent_iterations / max(pipeline, 1e-12),
                "fast_appends": int(
                    reg.counter("commit:fast_appends").value
                ),
                "staged_rows": int(reg.counter("commit:staged_rows").value),
                "mask_cache_hits": int(
                    reg.counter("agent_ops:mask_cache_hits").value
                ),
                "final_agents": sim.num_agents,
                "final_checksum": state_checksum(sim),
            }
        finally:
            sim.close()
        if best is None or record["pipeline_seconds"] < best[
                "pipeline_seconds"]:
            # Keep the least-noisy (fastest) repeat; checksums and
            # counters are identical across repeats by determinism.
            best = record
    return best


def _build_proliferation_churn(seed: int, n0: int, param):
    """Grow+divide proliferation with staggered division phases.

    Initial diameters are drawn uniformly across the growth window
    ``[10, division_diameter)`` instead of the registry lattice's uniform
    10.0, so a fraction of the population reaches the division threshold
    *every* step — sustained per-step churn rather than one synchronized
    wave.  ``max_agents`` leaves enough headroom that growth continues
    through the whole measurement window.  Mechanics is off: this is a
    microbench of the agent-ops data path (dispatch, behaviors, commit),
    and the mechanics stage is excluded from the metric regardless.
    """
    import numpy as np

    from repro.core.behaviors_lib import GrowDivide
    from repro.core.simulation import Simulation

    sim = Simulation("proliferation_churn", param, seed=seed)
    rng = np.random.default_rng(9000 + seed)
    side = int(np.ceil(n0 ** (1 / 3)))
    g = np.arange(side) * 12.0
    pos = np.stack(np.meshgrid(g, g, g, indexing="ij"), -1).reshape(-1, 3)
    idx = sim.add_cells(positions=pos[:n0],
                        diameters=rng.uniform(10.0, 13.9, n0))
    sim.attach_behavior(idx, GrowDivide(growth_rate=120.0,
                                        division_diameter=14.0,
                                        max_agents=64 * n0))
    sim.mechanics_enabled = False
    return sim


def _workloads(scale: str, agents: int | None, iterations: int | None):
    """The two population regimes as (name, factory, iterations, burn_in)."""
    from repro.core.param import Param
    from repro.simulations import get_simulation

    cfg = SCALES[scale]
    its = iterations if iterations is not None else cfg["iterations"]
    n = agents if agents is not None else cfg["agents"]

    def churn_factory(batched):
        return _build_proliferation_churn(
            3, n, Param(batched_agent_ops=batched, agent_sort_frequency=0))

    def static_factory(batched):
        bench = get_simulation("cell_clustering")
        p = bench.default_param().with_(batched_agent_ops=batched)
        return bench.build(n, param=p, seed=3)

    return [
        ("cell_proliferation", churn_factory, its, cfg["burn_in"]),
        ("cell_clustering", static_factory, its, cfg["burn_in"]),
    ]


def run_agent_ops(scale: str = "small", agents: int | None = None,
                  iterations: int | None = None,
                  out: str | os.PathLike | None =
                  "BENCH_agent_ops.json") -> dict:
    """Run both workloads batched-off vs batched-on; return the artifact."""
    cfg = SCALES[scale]
    workloads = []
    for name, factory, its, burn_in in _workloads(scale, agents, iterations):
        legacy = _measure(factory, its, burn_in, cfg["repeats"],
                          batched=False)
        batched = _measure(factory, its, burn_in, cfg["repeats"],
                           batched=True)
        workloads.append({
            "name": name,
            "iterations": its,
            "burn_in": burn_in,
            "legacy": legacy,
            "batched": batched,
            "speedup": (batched["agents_per_sec"]
                        / max(legacy["agents_per_sec"], 1e-12)),
            "checksums_match":
                legacy["final_checksum"] == batched["final_checksum"],
        })
    by_name = {w["name"]: w for w in workloads}
    artifact = {
        "experiment": "agent_ops",
        "scale": scale,
        "cpu_count": os.cpu_count() or 1,
        "workloads": workloads,
        # Acceptance-criteria fields (ISSUE 5): agents/sec gain on the
        # churn workload over the touched stages, the static-regime
        # ratio, and bitwise equality of the final state.
        "speedup_churn": by_name["cell_proliferation"]["speedup"],
        "speedup_static": by_name["cell_clustering"]["speedup"],
        "checksums_match": all(w["checksums_match"] for w in workloads),
    }
    if out is not None:
        Path(out).write_text(json.dumps(artifact, indent=2) + "\n")
        artifact["path"] = str(out)
    return artifact


def run(scale: str = "small", **overrides) -> ExperimentReport:
    """Execute the experiment at the given scale; returns its report."""
    artifact = run_agent_ops(scale=scale, **overrides)
    rows = []
    for w in artifact["workloads"]:
        b = w["batched"]
        rows.append([
            w["name"],
            b["final_agents"],
            w["iterations"],
            int(w["legacy"]["agents_per_sec"]),
            int(b["agents_per_sec"]),
            round(w["speedup"], 2),
            round(b["dispatch_seconds"] * 1e3, 1),
            f"{b['fast_appends']}/{b['staged_rows']}",
            "ok" if w["checksums_match"] else "DIVERGED",
        ])
    notes = [
        f"agents/sec gain on churn workload (cell_proliferation): "
        f"{artifact['speedup_churn']:.2f}x (criterion >= 1.5x)",
        f"static workload (cell_clustering) ratio: "
        f"{artifact['speedup_static']:.2f}x (informational)",
        "agents/sec = agent-iterations / (behaviors + commit stage "
        "seconds); other stages excluded",
        "checksums " + ("bitwise-identical batched on vs off"
                        if artifact["checksums_match"]
                        else "DIVERGE — pipeline bug"),
    ]
    if "path" in artifact:
        notes.append(f"artifact written to {artifact['path']}")
    return ExperimentReport(
        experiment="AgentOps",
        title="Batched agent-ops pipeline (stage-isolated wall clock)",
        headers=["workload", "agents", "iters", "legacy_a/s", "batched_a/s",
                 "speedup", "dispatch_ms", "fast/staged", "checksums"],
        rows=rows,
        notes=notes,
    )


def main() -> None:
    """Print the rendered report to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
