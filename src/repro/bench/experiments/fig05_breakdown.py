"""Figure 5: operation runtime breakdown (left) and microarchitecture
analysis (right).

All optimizations on, System A with all 144 threads.  The left panel is
the share of virtual runtime per operation category; the right panel is
the fraction of used pipeline slots stalled on memory (the paper's VTune
measurement: 31.8-47.2% of slots lost to unavailable operands).
"""

from __future__ import annotations

from repro.bench.runner import run_benchmark
from repro.bench.tables import ExperimentReport
from repro.simulations import TABLE1_ORDER, get_simulation

__all__ = ["run", "main"]

SCALES = {
    "small": dict(num_agents=1500, iterations=10, warmup=10),
    "medium": dict(num_agents=6000, iterations=20, warmup=20),
}

CATEGORIES = (
    "agent_ops",
    "build_environment",
    "agent_sorting",
    "diffusion",
    "setup_teardown",
    "visualization",
)


def run(scale: str = "small") -> ExperimentReport:
    """Execute the experiment at the given scale; returns its report."""
    cfg = SCALES[scale]
    rows = []
    for name in TABLE1_ORDER:
        param = get_simulation(name).default_param()
        res = run_benchmark(name, cfg["num_agents"], cfg["iterations"],
                            param=param, config="all_optimizations",
                            warmup_iterations=cfg["warmup"])
        pct = res.breakdown_percent()
        rows.append(
            [name]
            + [round(pct.get(c, 0.0), 2) for c in CATEGORIES]
            + [round(100.0 * res.memory_bound_fraction, 1)]
        )
    return ExperimentReport(
        experiment="Figure 5",
        title="Operation runtime breakdown (%) and memory-bound pipeline slots (%)",
        headers=["simulation", *CATEGORIES, "memory_bound_%"],
        rows=rows,
        notes=[
            "paper: agent operations median 76.3%, environment update median "
            "18.0%, sorting 0.18-6.33%, setup/teardown <= 2.66%",
            "paper: 31.8-47.2% of pipeline slots lost to memory stalls",
        ],
    )


def main() -> None:
    """Print the rendered report to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
