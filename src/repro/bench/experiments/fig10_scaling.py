"""Figure 10: scalability.

(a) Whole-simulation speedup at 72 physical cores + hyperthreading vs
serial execution, all optimizations on (paper: 60.7x-74.0x, median 64.7x,
i.e. 91.7% parallel efficiency at 72 cores).

(c-g) Strong scaling over thread counts for each benchmark with three
optimization stacks (standard / +uniform grid / all optimizations), using
ten time steps as in the paper.  The standard implementation's serial
kd-tree build caps its scaling; the grid fixes the build; the memory
optimizations let the engine scale across NUMA domains.
"""

from __future__ import annotations

from repro.bench.runner import run_benchmark
from repro.bench.stack import stack_params
from repro.bench.tables import ExperimentReport
from repro.simulations import TABLE1_ORDER

__all__ = ["run", "main"]

SCALES = {
    "small": dict(num_agents=5000, iterations=10, warmup=15,
                  threads=(1, 4, 18, 72, 144)),
    "medium": dict(num_agents=20_000, iterations=10, warmup=25,
                   threads=(1, 2, 4, 9, 18, 36, 72, 144)),
}

#: The three stacks of the strong-scaling panels.
PANEL_STACKS = ("standard", "+uniform_grid", "+static_detection")


def run(scale: str = "small") -> ExperimentReport:
    """Execute the experiment at the given scale; returns its report."""
    cfg = SCALES[scale]
    rows = []
    notes = []
    stacks = {label: p for label, p in stack_params()}

    # --- Panel (a): whole-simulation speedup, all optimizations.
    full = stacks["+static_detection"]
    for name in TABLE1_ORDER:
        serial = run_benchmark(name, cfg["num_agents"], cfg["iterations"],
                               param=full, num_threads=1, config="serial",
                               warmup_iterations=cfg["warmup"])
        smt = run_benchmark(name, cfg["num_agents"], cfg["iterations"],
                            param=full, num_threads=144, config="144threads",
                            warmup_iterations=cfg["warmup"])
        rows.append([name, "panel_a", 144,
                     round(serial.virtual_seconds / smt.virtual_seconds, 2),
                     smt.virtual_s_per_iteration * 1e3])
    notes.append("panel a paper reference: speedup 60.7-74.0x (median 64.7x) "
                 "with 72 cores + SMT")

    # --- Panels (c-g): strong scaling per stack.
    for name in TABLE1_ORDER:
        for stack_label in PANEL_STACKS:
            param = stacks[stack_label]
            t1 = None
            for t in cfg["threads"]:
                res = run_benchmark(name, cfg["num_agents"], cfg["iterations"],
                                    param=param, num_threads=t,
                                    config=f"{stack_label}@{t}",
                                    warmup_iterations=cfg["warmup"])
                if t1 is None:
                    t1 = res.virtual_seconds
                rows.append([name, stack_label, t,
                             round(t1 / res.virtual_seconds, 2),
                             res.virtual_s_per_iteration * 1e3])
    return ExperimentReport(
        experiment="Figure 10",
        title="Scalability: full simulations (a) and strong scaling (c-g)",
        headers=["simulation", "config", "threads", "speedup_vs_1thread",
                 "ms_per_iteration"],
        rows=rows,
        notes=notes,
    )


def main() -> None:
    """Print the rendered report to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
