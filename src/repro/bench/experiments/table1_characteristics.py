"""Table 1: performance-relevant simulation characteristics.

Regenerates the paper's Table 1 from the simulation registry, so the table
is provably consistent with what the workloads actually do (the test suite
cross-checks several flags against observed behavior).
"""

from __future__ import annotations

from repro.bench.tables import ExperimentReport
from repro.simulations import table1_rows

__all__ = ["run", "main"]


def run(scale: str = "small") -> ExperimentReport:
    """Execute the experiment at the given scale; returns its report."""
    rows = []
    for r in table1_rows():
        rows.append(
            [
                r["simulation"],
                "X" if r["creates_agents"] else "",
                "X" if r["deletes_agents"] else "",
                "X" if r["modifies_neighbors"] else "",
                "X" if r["load_imbalance"] else "",
                "X" if r["random_movement"] else "",
                "X" if r["uses_diffusion"] else "",
                "X" if r["has_static_regions"] else "",
                r["iterations"],
                r["agents_millions"],
                r["diffusion_volumes"],
            ]
        )
    return ExperimentReport(
        experiment="Table 1",
        title="Performance-relevant simulation characteristics",
        headers=[
            "simulation",
            "creates",
            "deletes",
            "mod_neighbors",
            "imbalance",
            "random_move",
            "diffusion",
            "static",
            "iterations",
            "agents_M(paper)",
            "diff_volumes(paper)",
        ],
        rows=rows,
    )


def main() -> None:
    """Print the rendered report to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
