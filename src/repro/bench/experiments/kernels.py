"""Kernel backend throughput: NumPy vs Numba vs CuPy, warm vs cold JIT.

Measures **wall-clock** throughput of the three hot kernels behind
``Param.kernel_backend`` (pairwise CSR force, displacement integration,
7-point diffusion stencil) for every requested backend, on one shared
workload: a uniform random suspension dense enough for ~25 neighbors per
agent, with the CSR built once by the uniform grid (kernel time only —
neighbor search is benchmarked by ``fig11``/``neighbor_cache``).

For each backend and kernel the bench records the **cold** first call
(which for compiled backends includes JIT compilation; the backend's
``compile_seconds`` is reported separately) and the **warm**
best-of-repeats call, as agents/sec and — for the force kernel —
pairs/sec.  Every backend's outputs are compared against the NumPy
reference within the per-kernel tolerances of
:data:`repro.kernels.api.KERNEL_TOLERANCES`; a speedup from wrong
answers is meaningless, so ``outputs_match`` gates the artifact.

Unavailable backends (no numba wheel, no CUDA device) are recorded as
``available: false`` with the probe's reason — honestly, never with
fabricated numbers.

``python -m repro bench kernels`` writes ``BENCH_kernels.json``;
``--agents/--iterations/--backends/--out`` override.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.bench.tables import ExperimentReport

__all__ = ["run", "main", "run_kernels"]

SCALES = {
    "small": dict(agents=8_000, resolution=32, iterations=5, repeats=3),
    # >= 50k agents: the scale of the Numba-vs-NumPy acceptance criterion.
    "medium": dict(agents=60_000, resolution=48, iterations=5, repeats=3),
}

#: Mean neighbors per agent the workload box is sized for.
TARGET_NEIGHBORS = 25.0


def _workload(n: int, resolution: int, seed: int = 7):
    """Shared inputs: positions, diameters, CSR, net forces, grid."""
    from repro.env import make_environment

    rng = np.random.default_rng(seed)
    diameter = 10.0
    radius = diameter
    # Box side for ~TARGET_NEIGHBORS expected neighbors per agent.
    side = (n * (4.0 / 3.0) * np.pi * radius**3 / TARGET_NEIGHBORS) ** (1 / 3)
    positions = rng.uniform(0.0, side, size=(n, 3))
    diameters = np.full(n, diameter)
    env = make_environment("uniform_grid")
    env.update(positions, radius)
    indptr, indices = env.neighbor_csr()
    concentration = rng.uniform(0.0, 4.0, size=(resolution,) * 3)
    return {
        "positions": positions,
        "diameters": diameters,
        "indptr": np.asarray(indptr, dtype=np.int64),
        "indices": np.asarray(indices, dtype=np.int64),
        "concentration": concentration,
        "voxel_size": 1.0,
        "diffusion_coefficient": 0.5,
        "decay": 0.01,
        "dt": 0.01,
        "max_displacement": 3.0,
    }


def _time_call(fn) -> tuple[float, object]:
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def _bench_backend(name: str, work: dict, iterations: int, repeats: int,
                   reference: dict | None) -> dict:
    """Measure one backend on the shared workload; compare to reference."""
    from repro.core.force import InteractionForce
    from repro.kernels.api import tolerance_for
    from repro.kernels.dispatch import _probe, make_kernels

    if not _probe(name):
        return {"available": False,
                "reason": f"backend '{name}' is not importable/usable here"}
    kb = make_kernels(name, registry=None, warn=False)
    if kb.name != name:
        return {"available": False,
                "reason": f"resolution fell back to '{kb.name}'"}

    force_model = InteractionForce()
    n = len(work["positions"])
    pairs = int(len(work["indices"]))
    sub_dt = min(
        work["dt"],
        work["voxel_size"] ** 2 / (6.0 * work["diffusion_coefficient"]) * 0.5,
    )

    def run_force():
        return kb.force(force_model, work["positions"], work["diameters"],
                        work["indptr"], work["indices"])

    def run_displace():
        pos = work["positions"].copy()
        moved = np.zeros(n, dtype=bool)
        t0 = time.perf_counter()
        kb.displace(pos, moved, net, work["dt"], work["max_displacement"])
        return time.perf_counter() - t0, (pos, moved)

    def run_diffuse():
        return kb.diffuse(work["concentration"], work["voxel_size"],
                          work["diffusion_coefficient"], work["decay"],
                          sub_dt)

    # Cold: the very first calls on a fresh backend instance (JIT compile
    # included for compiled backends).
    cold_force_s, (net, nz, got_pairs) = _time_call(run_force)
    cold_displace_s, (disp_pos, disp_moved) = run_displace()
    cold_diffuse_s, conc = _time_call(run_diffuse)

    # Warm: best of `iterations` repeated calls.
    warm_force_s = min(_time_call(run_force)[0] for _ in range(iterations))
    warm_displace_s = min(run_displace()[0] for _ in range(iterations))
    warm_diffuse_s = min(_time_call(run_diffuse)[0]
                         for _ in range(iterations))

    record = {
        "available": True,
        "compiled": kb.compiled,
        "compile_seconds": kb.compile_seconds,
        "kernel_calls": kb.calls,
        "pairs": pairs,
        "cold": {
            "force_s": cold_force_s,
            "displacement_s": cold_displace_s,
            "diffusion_s": cold_diffuse_s,
        },
        "warm": {
            "force_s": warm_force_s,
            "displacement_s": warm_displace_s,
            "diffusion_s": warm_diffuse_s,
            "force_pairs_per_s": pairs / warm_force_s,
            "force_agents_per_s": n / warm_force_s,
            "displacement_agents_per_s": n / warm_displace_s,
            "diffusion_voxels_per_s":
                work["concentration"].size / warm_diffuse_s,
        },
    }

    if reference is None:
        # This backend *is* the reference; stash outputs for the others.
        record["_outputs"] = {
            "net": net, "nz": nz, "pairs": got_pairs,
            "disp_pos": disp_pos, "disp_moved": disp_moved, "conc": conc,
        }
        record["agreement"] = {"reference": True, "ok": True}
    else:
        checks = {
            "force": tolerance_for("force", name).max_exceedance(
                net, reference["net"]),
            "displacement": tolerance_for("displacement", name
                                          ).max_exceedance(
                disp_pos, reference["disp_pos"]),
            "diffusion": tolerance_for("diffusion", name).max_exceedance(
                conc, reference["conc"]),
        }
        record["agreement"] = {
            "reference": False,
            "max_exceedance": {k: v for k, v in checks.items()},
            "pairs_match": got_pairs == reference["pairs"],
            "nonzero_match": bool(np.array_equal(nz, reference["nz"])),
            "moved_match": bool(
                np.array_equal(disp_moved, reference["disp_moved"])
            ),
            "ok": (all(v <= 1.0 for v in checks.values())
                   and got_pairs == reference["pairs"]
                   and bool(np.array_equal(nz, reference["nz"]))
                   and bool(np.array_equal(disp_moved,
                                           reference["disp_moved"]))),
        }
    return record


def run_kernels(scale: str = "small", agents: int | None = None,
                iterations: int | None = None, backends=None,
                out: str | os.PathLike | None = "BENCH_kernels.json"
                ) -> dict:
    """Benchmark every requested kernel backend; return the artifact.

    ``backends=None`` measures numpy plus every available compiled
    backend; an explicit list (e.g. ``["numpy", "numba"]``) records
    unavailable entries as such instead of skipping them silently.
    """
    from repro.kernels.dispatch import KNOWN_BACKENDS, _probe

    cfg = SCALES[scale]
    n = agents if agents is not None else cfg["agents"]
    its = iterations if iterations is not None else cfg["iterations"]
    if backends is None:
        backends = ["numpy"] + [b for b in ("numba", "cupy") if _probe(b)]
    backends = list(backends)
    unknown = [b for b in backends if b not in KNOWN_BACKENDS]
    if unknown:
        raise ValueError(f"unknown kernel backend(s) {unknown}; "
                         f"choose from {KNOWN_BACKENDS}")
    if "numpy" not in backends:
        backends.insert(0, "numpy")  # the reference always runs

    work = _workload(n, cfg["resolution"])
    results: dict[str, dict] = {}
    reference = None
    numpy_rec = _bench_backend("numpy", work, its, cfg["repeats"], None)
    reference = numpy_rec.pop("_outputs")
    results["numpy"] = numpy_rec
    for name in backends:
        if name == "numpy":
            continue
        results[name] = _bench_backend(name, work, its, cfg["repeats"],
                                       reference)

    def speedup(name, kernel):
        rec = results.get(name)
        if not rec or not rec.get("available"):
            return None
        return (results["numpy"]["warm"][f"{kernel}_s"]
                / rec["warm"][f"{kernel}_s"])

    artifact = {
        "experiment": "kernels",
        "scale": scale,
        "agents": n,
        "pairs": int(len(work["indices"])),
        "grid_resolution": cfg["resolution"],
        "iterations": its,
        "cpu_count": os.cpu_count() or 1,
        "backends": results,
        # Acceptance-criteria fields (ISSUE 6): warm force speedup over
        # NumPy per compiled backend (None = backend unavailable here —
        # recorded honestly, never fabricated).
        "speedup_force_numba": speedup("numba", "force"),
        "speedup_force_cupy": speedup("cupy", "force"),
        "speedup_diffusion_numba": speedup("numba", "diffusion"),
        "outputs_match": all(
            rec.get("agreement", {}).get("ok", False)
            for rec in results.values() if rec.get("available")
        ),
    }
    if out is not None:
        Path(out).write_text(json.dumps(artifact, indent=2) + "\n")
        artifact["path"] = str(out)
    return artifact


def run(scale: str = "small", **overrides) -> ExperimentReport:
    """Execute the experiment at the given scale; returns its report."""
    artifact = run_kernels(scale=scale, **overrides)
    rows = []
    for name, rec in artifact["backends"].items():
        if not rec.get("available"):
            rows.append([name, "-", "-", "-", "-", "-",
                         rec.get("reason", "unavailable")])
            continue
        agree = rec["agreement"]
        rows.append([
            name,
            f"{rec['warm']['force_pairs_per_s'] / 1e6:.2f}M",
            f"{rec['warm']['displacement_agents_per_s'] / 1e6:.2f}M",
            f"{rec['warm']['diffusion_voxels_per_s'] / 1e6:.2f}M",
            round(rec["cold"]["force_s"], 4),
            round(rec["compile_seconds"], 3),
            "ref" if agree.get("reference") else
            ("ok" if agree["ok"] else "DISAGREES"),
        ])
    notes = [
        f"{artifact['agents']} agents, {artifact['pairs']} CSR pairs, "
        f"{artifact['grid_resolution']}^3 voxels; warm = best of "
        f"{artifact['iterations']}, cold = first call (includes JIT)",
        "outputs " + ("within declared tolerances of the NumPy reference"
                      if artifact["outputs_match"]
                      else "DISAGREE — kernel bug"),
    ]
    if artifact["speedup_force_numba"] is not None:
        notes.append(
            f"numba warm force speedup: "
            f"{artifact['speedup_force_numba']:.2f}x (criterion >= 2x "
            f"at >= 50k agents)"
        )
    else:
        notes.append("numba unavailable here: speedup not measured "
                     "(recorded as null, see the CI numba leg)")
    if "path" in artifact:
        notes.append(f"artifact written to {artifact['path']}")
    return ExperimentReport(
        experiment="Kernels",
        title="Kernel backend throughput (NumPy / Numba / CuPy)",
        headers=["backend", "force_pairs/s", "displace_agents/s",
                 "diffuse_voxels/s", "cold_force_s", "compile_s",
                 "agreement"],
        rows=rows,
        notes=notes,
    )


def main() -> None:
    """Print the rendered report to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
