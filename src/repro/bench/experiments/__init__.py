"""Experiment modules, one per paper table/figure.

Every module exposes ``run(scale="small"|"medium") -> ExperimentReport``.
Scales shrink the paper's agent counts to laptop size; EXPERIMENTS.md
records how measured shapes compare with the paper's (absolute numbers are
not expected to match — the substrate is a simulated machine).
"""

from repro.bench.experiments import (
    agent_ops,
    arena,
    event_scheduling,
    ext_ablations,
    ext_distributed,
    ext_gpu,
    fig05_breakdown,
    fig06_complexity,
    fig07_biocellion,
    fig08_comparison,
    fig09_progressive,
    fig10_scaling,
    fig11_neighbor,
    fig12_sorting,
    fig13_allocator,
    kernels,
    neighbor_cache,
    scaling,
    sec610_numa,
    serve,
    table1_characteristics,
)

ALL_EXPERIMENTS = {
    "agent_ops": agent_ops,
    "arena": arena,
    "event_scheduling": event_scheduling,
    "table1": table1_characteristics,
    "fig05": fig05_breakdown,
    "fig06": fig06_complexity,
    "fig07": fig07_biocellion,
    "fig08": fig08_comparison,
    "fig09": fig09_progressive,
    "fig10": fig10_scaling,
    "fig11": fig11_neighbor,
    "fig12": fig12_sorting,
    "fig13": fig13_allocator,
    "kernels": kernels,
    "neighbor_cache": neighbor_cache,
    "scaling": scaling,
    "sec610": sec610_numa,
    "serve": serve,
    "ext_distributed": ext_distributed,
    "ext_ablations": ext_ablations,
    "ext_gpu": ext_gpu,
}

__all__ = ["ALL_EXPERIMENTS"]
