"""Single-arena SoA consolidation: bulk state movement A/B.

The arena (``Param.soa_arena``, :class:`repro.core.arena.SoAArena`)
consolidates every agent column into one contiguous block per domain so
that bulk state movements — checkpoint save, checkpoint restore (the
single-copy *adopt* fast path), shared-memory attach — become O(blocks)
instead of O(columns).  This experiment measures exactly those paths,
arena layout against the per-column baseline, same model/seed/steps:

- **step wall**: steady-state stepping must not regress (the views are
  zero-copy; elementwise engine code is identical);
- **save**: one block write vs a per-column ``savez`` loop;
- **restore**: one contiguous adopt copy vs per-column re-registration;
- **equivalence**: final and restored checksums must be bitwise equal
  across layouts — a speedup from a diverged state is meaningless;
- **engagement**: arena byte size / reallocation / adopt counters prove
  the arena path actually ran (anti-vacuity, mirroring
  ``verify.replay.arena_equivalence``).

``python -m repro bench arena`` writes ``BENCH_arena.json``; timings are
the minimum over ``repetitions`` save/restore repetitions (bulk copies
are microsecond-scale at smoke sizes, so single samples are noise).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.bench.tables import ExperimentReport
from repro.verify.snapshot import state_checksum

__all__ = ["run", "main", "run_arena", "DEFAULT_MODEL"]

DEFAULT_MODEL = "cell_proliferation"

SCALES = {
    "small": dict(agents=3000, iterations=5),
    "medium": dict(agents=12_000, iterations=10),
}

#: Save/restore timing repetitions (minimum is reported).
REPETITIONS = 5


def _measure_layout(model: str, agents: int, iterations: int, seed: int,
                    soa_arena: bool, repetitions: int, tmpdir: str) -> dict:
    """Step + checkpoint round-trip timings for one column layout."""
    from repro.core.checkpoint import restore_checkpoint, save_checkpoint
    from repro.core.param import Param
    from repro.simulations import get_simulation

    bench = get_simulation(model)
    param = bench.default_param().with_(soa_arena=soa_arena)
    path = Path(tmpdir) / f"arena_{int(soa_arena)}.npz"

    sim = bench.build(agents, param=param, seed=seed)
    try:
        t0 = time.perf_counter()
        sim.simulate(iterations)
        step_wall = time.perf_counter() - t0
        final_checksum = state_checksum(sim)

        save_seconds = min(
            _timed(lambda: save_checkpoint(sim, path))
            for _ in range(repetitions)
        )
        record = {
            "soa_arena": soa_arena,
            "final_agents": sim.num_agents,
            "step_wall_seconds": step_wall,
            "save_seconds": save_seconds,
            "checkpoint_bytes": path.stat().st_size,
            "final_checksum": final_checksum,
        }
    finally:
        sim.close()

    target = bench.build(agents, param=param, seed=seed + 1)
    try:
        restore_seconds = []
        adopts_used = 0
        for _ in range(repetitions):
            before = target.rm.soa.adopts if target.rm.soa is not None else 0
            restore_seconds.append(
                _timed(lambda: restore_checkpoint(target, path)))
            after = target.rm.soa.adopts if target.rm.soa is not None else 0
            adopts_used = after - before
        record["restore_seconds"] = min(restore_seconds)
        record["restore_adopts"] = adopts_used
        record["restored_checksum"] = state_checksum(target)
        if target.rm.soa is not None:
            record["arena_bytes"] = target.rm.soa.nbytes
            record["arena_reallocations"] = target.rm.soa.reallocations
        else:
            record["arena_bytes"] = 0
            record["arena_reallocations"] = 0
    finally:
        target.close()
    return record


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def run_arena(scale: str = "small", model: str = DEFAULT_MODEL,
              agents: int | None = None, iterations: int | None = None,
              seed: int = 0, repetitions: int = REPETITIONS,
              out: str | os.PathLike | None = "BENCH_arena.json") -> dict:
    """Run the arena vs per-column comparison; return the artifact dict."""
    cfg = SCALES[scale]
    agents = agents if agents is not None else cfg["agents"]
    iterations = iterations if iterations is not None else cfg["iterations"]

    with tempfile.TemporaryDirectory() as tmpdir:
        per_column = _measure_layout(model, agents, iterations, seed,
                                     False, repetitions, tmpdir)
        arena = _measure_layout(model, agents, iterations, seed,
                                True, repetitions, tmpdir)

    artifact = {
        "experiment": "arena",
        "model": model,
        "agents": agents,
        "iterations": iterations,
        "seed": seed,
        "repetitions": repetitions,
        "layouts": {"per_column": per_column, "arena": arena},
        # Bitwise equivalence across layouts and across the round-trip.
        "checksums_match": (
            per_column["final_checksum"] == arena["final_checksum"]
        ),
        "restore_matches": (
            per_column["restored_checksum"] == per_column["final_checksum"]
            and arena["restored_checksum"] == arena["final_checksum"]
        ),
        # The adopt fast path must be a single block copy (and must not
        # exist at all in the per-column baseline).
        "arena_single_copy": (arena["restore_adopts"] == 1
                              and per_column["restore_adopts"] == 0),
        "arena_engaged": (arena["arena_bytes"] > 0
                          and arena["arena_reallocations"] > 0),
        "save_speedup": per_column["save_seconds"] / arena["save_seconds"],
        "restore_speedup": (per_column["restore_seconds"]
                            / arena["restore_seconds"]),
    }
    if out is not None:
        Path(out).write_text(json.dumps(artifact, indent=2) + "\n")
        artifact["path"] = str(out)
    return artifact


def run(scale: str = "small", **overrides) -> ExperimentReport:
    """Execute the experiment at the given scale; returns its report."""
    artifact = run_arena(scale=scale, **overrides)
    rows = []
    for name in ("per_column", "arena"):
        r = artifact["layouts"][name]
        rows.append([
            name,
            round(r["step_wall_seconds"], 3),
            round(r["save_seconds"] * 1e3, 3),
            round(r["restore_seconds"] * 1e3, 3),
            r["restore_adopts"],
            r["final_checksum"][:12],
        ])
    notes = [
        f"model {artifact['model']}, {artifact['agents']} agents, "
        f"{artifact['iterations']} iterations, min of "
        f"{artifact['repetitions']} save/restore repetitions",
        "layout checksums "
        + ("bitwise-identical" if artifact["checksums_match"]
           else "DIVERGE — arena bug"),
        "round-trip checksums "
        + ("restored exactly" if artifact["restore_matches"]
           else "DIVERGE — checkpoint bug"),
        f"restore speedup {artifact['restore_speedup']:.2f}x, "
        f"save speedup {artifact['save_speedup']:.2f}x "
        f"(adopt fast path: {artifact['arena_single_copy']})",
    ]
    if "path" in artifact:
        notes.append(f"artifact written to {artifact['path']}")
    return ExperimentReport(
        experiment="Arena",
        title="Single-arena SoA vs per-column bulk state movement",
        headers=["layout", "step_wall_s", "save_ms", "restore_ms",
                 "adopts", "checksum"],
        rows=rows,
        notes=notes,
    )


def main() -> None:
    """Print the rendered report to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
