"""Displacement-bounded neighbor cache: wall-clock win and safety margin.

Measures **wall-clock** execution (like the ``scaling`` experiment, not
the virtual cost model) of the same workload with
``Param.neighbor_cache`` off and on, across three motion regimes:

- ``static_suspension`` — a jittered near-equilibrium lattice with a tiny
  Brownian walk: every step moves every agent a little, so the pre-cache
  engine rebuilds grid + CSR every step, while the cache re-filters one
  superset for many steps.  This is the mostly-static regime the cache is
  for, and carries the headline speedup criterion (>= 1.5x).
- ``oncology_late`` — the registry tumor model measured after a burn-in,
  agent count capped: fast Brownian motion plus stochastic death.  The
  auto-tuner is expected to keep the skin at ~0 here; recorded to show
  the cache does not hurt a workload it cannot help (informational).
- ``cell_proliferation`` — fully dynamic growth + division waves; the
  acceptance criterion is that the cache costs <= 5% here.

Every workload runs both configurations from the same seed and diffs the
final state checksum — a speedup from a diverged run is meaningless.  The
cache-on run also steps one iteration at a time and diffs the rebuild
counter to produce a **rebuild-interval histogram** (how many steps each
superset actually served).

``python -m repro bench neighbor_cache`` writes
``BENCH_neighbor_cache.json``; ``--agents/--iterations/--out`` override.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.bench.tables import ExperimentReport
from repro.verify.snapshot import state_checksum

__all__ = ["run", "main", "run_neighbor_cache"]

SCALES = {
    "small": dict(side=8, agents=600, iterations=15, burn_in=8, repeats=2),
    "medium": dict(side=14, agents=3000, iterations=40, burn_in=15,
                   repeats=3),
}


def _build_static_suspension(seed: int, side: int, param):
    """Jittered lattice at near-contact spacing with a tiny Brownian walk.

    Spacing is slightly below the interaction radius, so the CSR is
    non-empty and contact forces act (the re-filter is not measured
    against an empty pair list), yet the per-step displacement is a few
    thousandths of the radius — the regime where one superset serves
    many steps.
    """
    from repro.core.behaviors_lib import RandomWalk
    from repro.core.simulation import Simulation

    sim = Simulation("static_suspension", param, seed=seed)
    rng = np.random.default_rng(9000 + seed)
    g = np.arange(side) * 9.4
    pos = np.stack(np.meshgrid(g, g, g, indexing="ij"), -1).reshape(-1, 3)
    pos = pos + rng.normal(0.0, 0.05, pos.shape)
    idx = sim.add_cells(positions=pos, diameters=np.full(len(pos), 10.0))
    sim.attach_behavior(idx, RandomWalk(0.5))
    return sim


def _measure(factory, iterations: int, burn_in: int, repeats: int,
             cache: bool) -> dict:
    """Best-of-``repeats`` timed run; returns the workload's JSON record."""
    best = None
    for rep in range(max(repeats, 1)):
        sim = factory(cache)
        try:
            sim.simulate(burn_in)
            reg = sim.obs.registry
            rebuilds = reg.counter("scheduler:env_rebuilds")
            intervals: dict[int, int] = {}
            since_build = 0
            t0 = time.perf_counter()
            for _ in range(iterations):
                before = rebuilds.value
                sim.simulate(1)
                if rebuilds.value > before:
                    if since_build:
                        intervals[since_build] = (
                            intervals.get(since_build, 0) + 1
                        )
                    since_build = 1
                else:
                    since_build += 1
            wall = time.perf_counter() - t0
            if since_build:
                intervals[since_build] = intervals.get(since_build, 0) + 1
            record = {
                "wall_seconds": wall,
                "rebuilds": int(rebuilds.value),
                "hits": int(reg.counter("neighbor_cache:hits").value),
                "misses": int(reg.counter("neighbor_cache:misses").value),
                "refilters": int(
                    reg.counter("neighbor_cache:refilters").value
                ),
                "rebuild_intervals": {
                    str(k): v for k, v in sorted(intervals.items())
                },
                "stage_seconds": {k: round(v, 4) for k, v in
                                  sim.obs.stage_seconds().items() if v > 0},
                "final_agents": sim.num_agents,
                "final_pairs": int(len(sim.neighbors()[1])),
                "final_checksum": state_checksum(sim),
            }
        finally:
            sim.close()
        if best is None or record["wall_seconds"] < best["wall_seconds"]:
            # Keep the least-noisy (fastest) repeat; checksums and
            # counters are identical across repeats by determinism.
            best = record
    return best


def _workloads(scale: str, agents: int | None, iterations: int | None):
    """The three motion regimes as (name, factory, iterations, burn_in)."""
    from repro.core.param import Param
    from repro.simulations import get_simulation

    cfg = SCALES[scale]
    its = iterations if iterations is not None else cfg["iterations"]
    n = agents if agents is not None else cfg["agents"]

    def static_factory(cache):
        return _build_static_suspension(
            3, cfg["side"], Param(neighbor_cache=cache,
                                  agent_sort_frequency=0))

    def oncology_factory(cache):
        bench = get_simulation("oncology")
        p = bench.default_param().with_(neighbor_cache=cache)
        return bench.build(n, param=p, seed=3)

    def proliferation_factory(cache):
        bench = get_simulation("cell_proliferation")
        p = bench.default_param().with_(neighbor_cache=cache)
        return bench.build(n, param=p, seed=3)

    return [
        ("static_suspension", static_factory, its, cfg["burn_in"]),
        ("oncology_late", oncology_factory, its, cfg["burn_in"]),
        ("cell_proliferation", proliferation_factory, its, 0),
    ]


def run_neighbor_cache(scale: str = "small", agents: int | None = None,
                       iterations: int | None = None,
                       out: str | os.PathLike | None =
                       "BENCH_neighbor_cache.json") -> dict:
    """Run all three workloads cache-off vs cache-on; return the artifact."""
    cfg = SCALES[scale]
    workloads = []
    for name, factory, its, burn_in in _workloads(scale, agents, iterations):
        off = _measure(factory, its, burn_in, cfg["repeats"], cache=False)
        on = _measure(factory, its, burn_in, cfg["repeats"], cache=True)
        workloads.append({
            "name": name,
            "iterations": its,
            "burn_in": burn_in,
            "cache_off": off,
            "cache_on": on,
            "speedup": off["wall_seconds"] / on["wall_seconds"],
            "checksums_match":
                off["final_checksum"] == on["final_checksum"],
        })
    by_name = {w["name"]: w for w in workloads}
    artifact = {
        "experiment": "neighbor_cache",
        "scale": scale,
        "cpu_count": os.cpu_count() or 1,
        "workloads": workloads,
        # Acceptance-criteria fields (ISSUE 4): the mostly-static speedup
        # and the fully-dynamic overhead (negative = the cache helped).
        "speedup_static": by_name["static_suspension"]["speedup"],
        "dynamic_overhead":
            1.0 / by_name["cell_proliferation"]["speedup"] - 1.0,
        "checksums_match": all(w["checksums_match"] for w in workloads),
    }
    if out is not None:
        Path(out).write_text(json.dumps(artifact, indent=2) + "\n")
        artifact["path"] = str(out)
    return artifact


def run(scale: str = "small", **overrides) -> ExperimentReport:
    """Execute the experiment at the given scale; returns its report."""
    artifact = run_neighbor_cache(scale=scale, **overrides)
    rows = []
    for w in artifact["workloads"]:
        on = w["cache_on"]
        rows.append([
            w["name"],
            on["final_agents"],
            w["iterations"],
            round(w["cache_off"]["wall_seconds"], 3),
            round(on["wall_seconds"], 3),
            round(w["speedup"], 2),
            f"{on['hits']}/{on['hits'] + on['misses']}",
            "ok" if w["checksums_match"] else "DIVERGED",
        ])
    notes = [
        f"speedup on mostly-static workload: "
        f"{artifact['speedup_static']:.2f}x (criterion >= 1.5x)",
        f"overhead on fully-dynamic cell_proliferation: "
        f"{artifact['dynamic_overhead'] * 100:+.1f}% (criterion <= +5%)",
        "checksums " + ("bitwise-identical cache on vs off"
                        if artifact["checksums_match"]
                        else "DIVERGE — cache bug"),
    ]
    if "path" in artifact:
        notes.append(f"artifact written to {artifact['path']}")
    return ExperimentReport(
        experiment="NeighborCache",
        title="Displacement-bounded neighbor caching (wall clock)",
        headers=["workload", "agents", "iters", "off_wall_s", "on_wall_s",
                 "speedup", "cache_hits", "checksums"],
        rows=rows,
        notes=notes,
    )


def main() -> None:
    """Print the rendered report to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
