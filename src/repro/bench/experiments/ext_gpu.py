"""Extension: GPU offload study (paper §2 / Hesam et al. IPDPSW'21).

Sweeps the agent count and compares the virtual iteration time of the CPU
engine against the same engine with the mechanics operation offloaded to
a simulated A100/V100.  Reproduces the two qualitative claims the paper
uses to justify its CPU focus:

1. the offload only pays off beyond a population threshold (PCIe latency
   and launch overhead dominate small workloads);
2. device memory caps the population far below the CPU engine's reach
   (System A holds 12x the A100's memory).
"""

from __future__ import annotations

from repro.bench.runner import run_benchmark
from repro.bench.tables import ExperimentReport
from repro.gpu import A100, GpuDevice, V100
from repro.parallel import Machine, SYSTEM_A
from repro.simulations import get_simulation

__all__ = ["run", "main"]

SCALES = {
    "small": dict(agent_counts=(100, 1000, 5000, 20_000), iterations=3),
    "medium": dict(agent_counts=(100, 1000, 10_000, 50_000, 100_000), iterations=3),
}


def _run(n, iterations, device=None):
    # Workstation-class host (36 threads), dense contact workload — the
    # setting of the GPU-offload study in Hesam et al.; against the full
    # 144-thread server the PCIe transfers dominate and the CPU wins
    # throughout, which is exactly why the paper evaluates on the CPU.
    bench = get_simulation("cell_sorting")
    machine = Machine(
        SYSTEM_A.with_scaled_caches(min(4_000_000 / n, 256.0)), num_threads=36
    )
    param = bench.default_param().with_(agent_sort_frequency=0)
    sim = bench.build(n, param=param, machine=machine, seed=0)
    if device is not None:
        sim.gpu_device = GpuDevice(device)
    sim.simulate(iterations)
    return sim.virtual_seconds() / iterations


def run(scale: str = "small") -> ExperimentReport:
    """Execute the experiment at the given scale; returns its report."""
    cfg = SCALES[scale]
    rows = []
    for n in cfg["agent_counts"]:
        cpu = _run(n, cfg["iterations"])
        a100 = _run(n, cfg["iterations"], device=A100)
        v100 = _run(n, cfg["iterations"], device=V100)
        rows.append(
            [n, cpu * 1e3, a100 * 1e3, v100 * 1e3,
             round(cpu / a100, 2)]
        )
    notes = [
        f"device capacity ceilings: A100 {A100.max_agents():,} agents, "
        f"V100 {V100.max_agents():,} agents; the paper's CPU engine reaches "
        "1.72e9 agents on System B (12x the A100's memory, paper §2)",
    ]
    return ExperimentReport(
        experiment="Extension: GPU offload",
        title="CPU vs transparent GPU offload of the mechanics operation",
        headers=["agents", "cpu_ms_per_iter", "a100_ms_per_iter",
                 "v100_ms_per_iter", "a100_speedup"],
        rows=rows,
        notes=notes,
    )


def main() -> None:
    """Print the rendered report to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
