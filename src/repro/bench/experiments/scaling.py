"""Real-parallelism scaling: serial vs shared-memory process pool (§4.1).

Unlike the other experiments, which measure *virtual* time on a simulated
machine, this one measures **wall-clock** time of actual execution: the
same model runs once on the serial backend, once per worker count on
the process-pool backend (``Param.execution_backend = "process"``), and
once in adaptive mode (``"auto"``, which picks serial/process from the
measured cost model); the JSON artifact records agents/second, the
scheduler's per-stage wall-time breakdown, steal counters, the final
state checksum of every run, and whether the auto run landed within 5%
of the best static configuration.

The checksum column is the point: the process backend promises *bitwise*
identity with serial execution (fixed chunk order in every reduction), so
``checksums_match`` must be true no matter the worker count — a scaling
number from a run that diverged is meaningless.

``python -m repro bench scaling`` writes ``BENCH_scaling.json`` into the
current directory (the repo root in CI); ``--workers/--agents/
--iterations/--out`` override the defaults.  On a single-core container
the speedup is naturally ~1x or below (process orchestration overhead
with nothing to parallelize over); the artifact still demonstrates the
checksum identity and records ``cpu_count`` so readers can interpret the
numbers.

``--backend distributed --shards N [M ...]`` runs the *distributed* leg
instead: serial vs the spatially-sharded halo-exchange backend per
shard count, recording agents/second, halo traffic (``dist:halo_bytes``),
migration counts, and the exchange-time share of the wall clock.  The
leg is **merged** into an existing ``BENCH_scaling.json`` under the
``"distributed"`` key — the default serial/process artifact keys are
left untouched, so CI assertions on both coexist in one file.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.bench.tables import ExperimentReport
from repro.verify.snapshot import state_checksum

__all__ = ["run", "main", "run_scaling", "run_scaling_distributed",
           "DEFAULT_MODEL"]

DEFAULT_MODEL = "cell_proliferation"

SCALES = {
    "small": dict(agents=2000, iterations=10),
    "medium": dict(agents=20_000, iterations=20),
}


def _measure(model: str, agents: int, iterations: int, seed: int,
             backend: str, workers: int, shards: int = 0) -> dict:
    """One timed run; returns the JSON record for the ``runs`` array."""
    from repro.core.param import Param
    from repro.simulations import get_simulation

    bench = get_simulation(model)
    param = Param(execution_backend=backend, backend_workers=workers,
                  backend_shards=shards)
    sim = bench.build(agents, param=param, seed=seed)
    try:
        agent_steps = 0
        t0 = time.perf_counter()
        for _ in range(iterations):
            agent_steps += sim.num_agents
            sim.simulate(1)
        wall = time.perf_counter() - t0
        record = {
            "backend": backend,
            "workers": workers if backend != "serial" else 1,
            "wall_seconds": wall,
            "agents_per_second": agent_steps / wall if wall > 0 else 0.0,
            "agent_steps": agent_steps,
            "final_agents": sim.num_agents,
            "stage_seconds": {k: v for k, v in
                              sim.obs.stage_seconds().items() if v > 0},
            "final_checksum": state_checksum(sim),
        }
        if shards:
            record["shards"] = shards
        stats = sim.backend.stats()
        if stats:
            record["backend_stats"] = stats
        return record
    finally:
        sim.close()


def run_scaling(scale: str = "small", model: str = DEFAULT_MODEL,
                agents: int | None = None, iterations: int | None = None,
                workers=None, seed: int = 0,
                out: str | os.PathLike | None = "BENCH_scaling.json") -> dict:
    """Run the serial/process comparison and return the artifact dict.

    ``workers`` is an iterable of process-pool worker counts; the default
    is ``{1, 2, cpu_count}``.  ``out=None`` skips writing the JSON file.
    """
    cfg = SCALES[scale]
    agents = agents if agents is not None else cfg["agents"]
    iterations = iterations if iterations is not None else cfg["iterations"]
    cpus = os.cpu_count() or 1
    if workers is None:
        workers = sorted({1, 2, cpus})
    else:
        workers = sorted({int(w) for w in workers})

    runs = [_measure(model, agents, iterations, seed, "serial", 1)]
    for w in workers:
        runs.append(_measure(model, agents, iterations, seed, "process", w))
    # The adaptive backend runs alongside the static grid: the acceptance
    # bar is auto within 5% of the best *static* choice (and never slower
    # than serial at small populations, where it must stay serial).
    auto = _measure(model, agents, iterations, seed, "auto", max(workers))
    runs.append(auto)

    serial = runs[0]
    process_runs = [r for r in runs if r["backend"] == "process"]
    checksums_match = all(r["final_checksum"] == serial["final_checksum"]
                          for r in runs)
    best = min(process_runs, key=lambda r: r["wall_seconds"])
    # Process-pool overhead: wall time of the lowest process worker count
    # over serial.  With 1 worker this isolates pure orchestration cost
    # (shm copies, message round-trips) from any parallel win — the seed
    # artifact showed ~1.7x; this field makes the trajectory trackable.
    overhead_run = min(process_runs, key=lambda r: r["workers"])
    best_static = min([serial] + process_runs,
                      key=lambda r: r["wall_seconds"])
    auto_stats = auto.get("backend_stats", {})
    artifact = {
        "experiment": "scaling",
        "model": model,
        "agents": agents,
        "iterations": iterations,
        "seed": seed,
        "cpu_count": cpus,
        "runs": runs,
        "checksums_match": checksums_match,
        "best_speedup": serial["wall_seconds"] / best["wall_seconds"],
        "best_workers": best["workers"],
        "process_overhead_ratio": (
            overhead_run["wall_seconds"] / serial["wall_seconds"]
        ),
        "process_overhead_workers": overhead_run["workers"],
        "best_static_backend": best_static["backend"],
        "best_static_workers": best_static["workers"],
        "best_static_wall_seconds": best_static["wall_seconds"],
        "auto_wall_seconds": auto["wall_seconds"],
        "auto_vs_best_static": (
            auto["wall_seconds"] / best_static["wall_seconds"]
        ),
        "auto_within_5pct": (
            auto["wall_seconds"] <= 1.05 * best_static["wall_seconds"]
        ),
        "auto_decisions": auto_stats.get("auto_decisions", 0),
        "auto_final_backend": auto_stats.get("active", "serial"),
    }
    if out is not None:
        Path(out).write_text(json.dumps(artifact, indent=2) + "\n")
        artifact["path"] = str(out)
    return artifact


def run_scaling_distributed(scale: str = "small", model: str = DEFAULT_MODEL,
                            agents: int | None = None,
                            iterations: int | None = None,
                            shards=(2,), seed: int = 0,
                            out: str | os.PathLike | None =
                            "BENCH_scaling.json") -> dict:
    """Serial vs the spatially-sharded backend, one run per shard count.

    Returns the full (merged) artifact dict; the distributed leg lives
    under its ``"distributed"`` key.  An existing artifact at ``out`` is
    read first and only that key is replaced, so the default
    serial/process keys CI asserts on survive.

    Per shard count the leg records agents/second, the final-state
    checksum (which must equal serial's — the bitwise contract), the
    rolled per-shard global digest, halo traffic and migration counters
    (anti-vacuous: a decomposition nothing ever crosses proves nothing),
    ``digest_checks`` (every one a host-side replica-consistency
    equality that passed), the exchange share of wall time, and the
    host-side agent-ops share of wall time (the serialized fraction
    that bounds distributed speedup while behaviors run on the host).
    """
    cfg = SCALES[scale]
    agents = agents if agents is not None else cfg["agents"]
    iterations = iterations if iterations is not None else cfg["iterations"]
    shards = sorted({int(s) for s in shards})
    if any(s < 2 for s in shards):
        raise ValueError(f"distributed shard counts must be >= 2: {shards}")

    runs = [_measure(model, agents, iterations, seed, "serial", 1)]
    for s in shards:
        runs.append(
            _measure(model, agents, iterations, seed, "distributed", 1,
                     shards=s)
        )
    serial, dist_runs = runs[0], runs[1:]
    checksums_match = all(r["final_checksum"] == serial["final_checksum"]
                          for r in dist_runs)
    per_shards = {}
    for r in dist_runs:
        stats = r.get("backend_stats", {})
        per_shards[str(r["shards"])] = {
            "wall_seconds": r["wall_seconds"],
            "agents_per_second": r["agents_per_second"],
            "speedup_vs_serial": serial["wall_seconds"] / r["wall_seconds"],
            "global_digest": stats.get("last_global_digest"),
            "migrations": int(stats.get("migrations", 0)),
            "halo_agents": int(stats.get("halo_agents", 0)),
            "halo_bytes": int(stats.get("halo_bytes", 0)),
            "sync_full": int(stats.get("sync_full", 0)),
            "sync_delta": int(stats.get("sync_delta", 0)),
            "digest_checks": int(stats.get("digest_checks", 0)),
            "exchange_share": (
                stats.get("exchange_seconds", 0.0) / r["wall_seconds"]
                if r["wall_seconds"] > 0 else 0.0
            ),
            # Behaviors/divisions still run on the host while shards
            # only cover mechanics — this share is the Amdahl bound on
            # distributed speedup (PR 9); tracked so the trajectory of
            # moving agent ops into the shards is visible.
            "host_agent_ops_share": (
                r["stage_seconds"].get("agent_ops", 0.0)
                / r["wall_seconds"]
                if r["wall_seconds"] > 0 else 0.0
            ),
        }
    best = min(dist_runs, key=lambda r: r["wall_seconds"])
    leg = {
        "model": model,
        "agents": agents,
        "iterations": iterations,
        "seed": seed,
        "cpu_count": os.cpu_count() or 1,
        "runs": runs,
        "checksums_match": checksums_match,
        "per_shards": per_shards,
        "best_shards": best["shards"],
        "best_speedup": serial["wall_seconds"] / best["wall_seconds"],
        "total_migrations": sum(
            v["migrations"] for v in per_shards.values()),
        "total_halo_agents": sum(
            v["halo_agents"] for v in per_shards.values()),
    }
    artifact = {"experiment": "scaling"}
    if out is not None and Path(out).exists():
        try:
            artifact = json.loads(Path(out).read_text())
        except ValueError:
            pass  # corrupt artifact: rewrite from scratch
    artifact["distributed"] = leg
    if out is not None:
        Path(out).write_text(json.dumps(artifact, indent=2) + "\n")
        artifact["path"] = str(out)
    return artifact


def _run_distributed_report(scale, shards, **overrides) -> ExperimentReport:
    """Distributed-leg variant of :func:`run` (``--backend distributed``)."""
    artifact = run_scaling_distributed(
        scale=scale, shards=shards or (2,), **overrides)
    leg = artifact["distributed"]
    serial_wall = leg["runs"][0]["wall_seconds"]
    rows = []
    for r in leg["runs"]:
        key = str(r.get("shards", ""))
        per = leg["per_shards"].get(key, {})
        rows.append([
            r["backend"], r.get("shards", "-"),
            round(r["wall_seconds"], 3),
            round(r["agents_per_second"]),
            round(serial_wall / r["wall_seconds"], 2),
            per.get("migrations", "-"),
            per.get("halo_bytes", "-"),
            r["final_checksum"][:12],
        ])
    notes = [
        f"model {leg['model']}, {leg['agents']} agents, "
        f"{leg['iterations']} iterations, cpu_count={leg['cpu_count']}",
        "checksums "
        + ("all bitwise-identical to serial"
           if leg["checksums_match"] else "DIVERGE — backend bug"),
        f"activity: {leg['total_migrations']} migrations, "
        f"{leg['total_halo_agents']} halo agents across shard counts"
        + ("" if leg["total_migrations"] and leg["total_halo_agents"]
           else " — VACUOUS (no boundary traffic)"),
        f"best: {leg['best_speedup']:.2f}x serial at "
        f"{leg['best_shards']} shards",
    ]
    if "path" in artifact:
        notes.append(
            f"distributed leg merged into {artifact['path']}")
    return ExperimentReport(
        experiment="Scaling",
        title="Serial vs spatially-sharded halo-exchange backend "
              "(wall clock)",
        headers=["backend", "shards", "wall_s", "agents_per_s",
                 "speedup_vs_serial", "migrations", "halo_bytes",
                 "checksum"],
        rows=rows,
        notes=notes,
    )


def run(scale: str = "small", backend: str | None = None, shards=None,
        **overrides) -> ExperimentReport:
    """Execute the experiment at the given scale; returns its report.

    ``backend="distributed"`` switches to the sharded leg (serial vs
    halo-exchange per ``shards`` count, merged into the artifact under
    the ``"distributed"`` key); any other value runs the default
    serial/process/auto comparison.
    """
    if backend == "distributed":
        overrides.pop("workers", None)
        return _run_distributed_report(scale, shards, **overrides)
    artifact = run_scaling(scale=scale, **overrides)
    serial_wall = artifact["runs"][0]["wall_seconds"]
    rows = []
    for r in artifact["runs"]:
        rows.append([
            r["backend"], r["workers"],
            round(r["wall_seconds"], 3),
            round(r["agents_per_second"]),
            round(serial_wall / r["wall_seconds"], 2),
            r["final_checksum"][:12],
        ])
    notes = [
        f"model {artifact['model']}, {artifact['agents']} agents, "
        f"{artifact['iterations']} iterations, cpu_count={artifact['cpu_count']}",
        "checksums "
        + ("all bitwise-identical to serial"
           if artifact["checksums_match"] else "DIVERGE — backend bug"),
        f"process overhead at {artifact['process_overhead_workers']} "
        f"worker(s): {artifact['process_overhead_ratio']:.2f}x serial wall",
        f"auto backend: {artifact['auto_wall_seconds']:.3f}s wall, "
        f"{artifact['auto_vs_best_static']:.2f}x the best static run "
        f"({artifact['best_static_backend']}"
        f"/{artifact['best_static_workers']}w), "
        f"{artifact['auto_decisions']} decisions, final backend "
        f"{artifact['auto_final_backend']}"
        + ("" if artifact["auto_within_5pct"]
           else " — NOT within 5% of best static"),
    ]
    if "path" in artifact:
        notes.append(f"artifact written to {artifact['path']}")
    return ExperimentReport(
        experiment="Scaling",
        title="Serial vs shared-memory process pool (wall clock)",
        headers=["backend", "workers", "wall_s", "agents_per_s",
                 "speedup_vs_serial", "checksum"],
        rows=rows,
        notes=notes,
    )


def main() -> None:
    """Print the rendered report to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
