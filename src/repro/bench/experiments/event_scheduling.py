"""Event-driven quiescence scheduling: wall-clock win on idle stretches.

Measures **wall-clock** execution (like ``neighbor_cache``, not the
virtual cost model) of the same workload with ``Param.event_scheduling``
off and on, across three quiescence regimes:

- ``epidemiology_interventions`` — the timed-interventions scenario:
  case imports, a lockdown window, and a vaccination drive fire at
  scheduled iterations; between them the epidemic burns out and every
  behavior's ``next_fire`` horizon moves past the next scheduled event,
  so the stepper jumps whole stretches.  This is the burst-quiescent
  regime the layer is for and carries the headline speedup criterion
  (>= 2x).
- ``static_suspension`` — a contact-free lattice under §5 static-agent
  detection with no behaviors: after the settle tick proves every agent
  static, the horizon is unbounded and one jump covers the rest of the
  run (the "idle tenant" regime the serve layer exploits).
- ``oncology`` — fully dynamic growth + stochastic death every tick; the
  acceptance criterion is that event scheduling costs <= 5% when there
  is never anything to skip.

Every workload runs both configurations from the same seed and diffs the
final state checksum — a speedup from a diverged run is meaningless.
The events-on records carry the engine's own counters
(``events:jumps``, ``events:skipped_steps``, ``events:deferred_dispatches``,
``events:max_jump``) so a green artifact cannot be vacuous.

The artifact also carries a ``serve`` section: an idle
``epidemiology_interventions`` session advanced in the background by a
:class:`~repro.serve.pool.SessionPool`, recording the pool's
``serve:advance_chunks`` vs ``serve:steps_total`` — horizon jumps turn
per-tick RPCs into per-stretch RPCs, the PR 8 "idle tenants cost zero
steps" trajectory.

``python -m repro bench event_scheduling`` writes ``BENCH_events.json``;
``--agents/--iterations/--out`` override.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.bench.tables import ExperimentReport
from repro.verify.snapshot import state_checksum

__all__ = ["run", "main", "run_event_scheduling"]

SCALES = {
    "small": dict(agents=400, iterations=500, side=8, repeats=3,
                  serve_steps=120),
    "medium": dict(agents=3000, iterations=1000, side=12, repeats=3,
                   serve_steps=400),
}


def _build_static_suspension(seed: int, side: int, param):
    """Contact-free lattice: spacing above the interaction diameter, no
    behaviors — forces are identically zero, so §5 detection flags every
    agent static after the settle tick and the event horizon is open."""
    from repro.core.simulation import Simulation

    sim = Simulation("static_suspension", param, seed=seed)
    g = np.arange(side) * 10.5
    pos = np.stack(np.meshgrid(g, g, g, indexing="ij"), -1).reshape(-1, 3)
    sim.add_cells(positions=pos, diameters=np.full(len(pos), 10.0))
    return sim


def _measure(factory, iterations: int, repeats: int, events: bool) -> dict:
    """Best-of-``repeats`` timed chunked run; returns the JSON record.

    The run is a single ``simulate(iterations)`` call — per-step stepping
    would cap every jump at one tick and measure only deferred dispatch.
    """
    best = None
    for _ in range(max(repeats, 1)):
        sim = factory(events)
        try:
            t0 = time.perf_counter()
            sim.simulate(iterations)
            wall = time.perf_counter() - t0
            snap = sim.obs.registry.snapshot()
            record = {
                "wall_seconds": wall,
                "events_jumps": int(snap.get("events:jumps", 0)),
                "events_skipped_steps":
                    int(snap.get("events:skipped_steps", 0)),
                "events_deferred_dispatches":
                    int(snap.get("events:deferred_dispatches", 0)),
                "events_max_jump": int(snap.get("events:max_jump", 0)),
                "kernel_calls": int(snap.get("kernel:calls", 0)),
                "stage_seconds": {k: round(v, 4) for k, v in
                                  sim.obs.stage_seconds().items() if v > 0},
                "final_agents": sim.num_agents,
                "final_iteration": int(sim.scheduler.iteration),
                "final_checksum": state_checksum(sim),
            }
        finally:
            sim.close()
        if best is None or record["wall_seconds"] < best["wall_seconds"]:
            # Keep the least-noisy (fastest) repeat; checksums and
            # counters are identical across repeats by determinism.
            best = record
    return best


def _workloads(scale: str, agents: int | None, iterations: int | None):
    """The three quiescence regimes as (name, factory, iterations)."""
    from repro.core.param import Param
    from repro.simulations import get_simulation

    cfg = SCALES[scale]
    its = iterations if iterations is not None else cfg["iterations"]
    n = agents if agents is not None else cfg["agents"]

    def interventions_factory(events):
        bench = get_simulation("epidemiology_interventions")
        p = bench.default_param().with_(event_scheduling=events)
        return bench.build(n, param=p, seed=3)

    def static_factory(events):
        return _build_static_suspension(
            3, cfg["side"], Param(event_scheduling=events,
                                  detect_static_agents=True,
                                  agent_sort_frequency=0))

    def oncology_factory(events):
        bench = get_simulation("oncology")
        p = bench.default_param().with_(event_scheduling=events)
        return bench.build(n, param=p, seed=3)

    return [
        ("epidemiology_interventions", interventions_factory, its),
        ("static_suspension", static_factory, its),
        ("oncology", oncology_factory, max(10, its // 20)),
    ]


def _measure_serve_idle(scale: str, agents: int | None) -> dict:
    """Advance one idle interventions session in the background and read
    the pool's chunk accounting: RPCs per tick vs RPCs per jump."""
    from repro.serve import protocol as P
    from repro.serve.pool import SessionPool

    cfg = SCALES[scale]
    steps = cfg["serve_steps"]
    n = agents if agents is not None else cfg["agents"]
    pool = SessionPool(workers=1)
    try:
        created = pool.handle(P.CreateSession(
            model="epidemiology_interventions", agents=n, seed=3,
            params={"event_scheduling": True}, name="bench-idle",
        ))
        sid = created.session
        pool.handle(P.AdvanceRequest(session=sid, steps=steps))
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            snap = pool.handle(P.SnapshotRequest(session=sid))
            if not snap.advancing:
                break
            time.sleep(0.02)
        metrics = pool.obs.registry.snapshot()
        return {
            "session_steps": steps,
            "final_iteration": int(snap.iteration),
            "advance_chunks": int(metrics.get("serve:advance_chunks", 0)),
            "advance_jumped_steps":
                int(metrics.get("serve:advance_jumped_steps", 0)),
            "steps_total": int(metrics.get("serve:steps_total", 0)),
        }
    finally:
        pool.shutdown()


def run_event_scheduling(scale: str = "small", agents: int | None = None,
                         iterations: int | None = None,
                         out: str | os.PathLike | None =
                         "BENCH_events.json") -> dict:
    """Run all workloads events-off vs events-on; return the artifact."""
    cfg = SCALES[scale]
    workloads = []
    for name, factory, its in _workloads(scale, agents, iterations):
        off = _measure(factory, its, cfg["repeats"], events=False)
        on = _measure(factory, its, cfg["repeats"], events=True)
        workloads.append({
            "name": name,
            "iterations": its,
            "events_off": off,
            "events_on": on,
            "speedup": off["wall_seconds"] / on["wall_seconds"],
            "checksums_match":
                off["final_checksum"] == on["final_checksum"],
        })
    by_name = {w["name"]: w for w in workloads}
    serve = _measure_serve_idle(scale, agents)
    artifact = {
        "experiment": "event_scheduling",
        "scale": scale,
        "cpu_count": os.cpu_count() or 1,
        "workloads": workloads,
        "serve_idle_session": serve,
        # Acceptance-criteria fields (ISSUE 10): quiescence-heavy speedup
        # and the fully-dynamic overhead (negative = events helped).
        "speedup_quiescent":
            by_name["epidemiology_interventions"]["speedup"],
        "speedup_static": by_name["static_suspension"]["speedup"],
        "dynamic_overhead": 1.0 / by_name["oncology"]["speedup"] - 1.0,
        "total_jumps": sum(
            w["events_on"]["events_jumps"] for w in workloads),
        "total_deferred_dispatches": sum(
            w["events_on"]["events_deferred_dispatches"] for w in workloads),
        "checksums_match": all(w["checksums_match"] for w in workloads),
    }
    if out is not None:
        Path(out).write_text(json.dumps(artifact, indent=2) + "\n")
        artifact["path"] = str(out)
    return artifact


def run(scale: str = "small", **overrides) -> ExperimentReport:
    """Execute the experiment at the given scale; returns its report."""
    artifact = run_event_scheduling(scale=scale, **overrides)
    rows = []
    for w in artifact["workloads"]:
        on = w["events_on"]
        rows.append([
            w["name"],
            on["final_agents"],
            w["iterations"],
            round(w["events_off"]["wall_seconds"], 3),
            round(on["wall_seconds"], 3),
            round(w["speedup"], 2),
            on["events_jumps"],
            on["events_max_jump"],
            on["events_deferred_dispatches"],
            "ok" if w["checksums_match"] else "DIVERGED",
        ])
    serve = artifact["serve_idle_session"]
    notes = [
        f"speedup on burst-quiescent interventions workload: "
        f"{artifact['speedup_quiescent']:.2f}x (criterion >= 2x)",
        f"speedup on all-static suspension: "
        f"{artifact['speedup_static']:.2f}x",
        f"overhead on fully-dynamic oncology: "
        f"{artifact['dynamic_overhead'] * 100:+.1f}% (criterion <= +5%)",
        f"idle served session: {serve['steps_total']} ticks in "
        f"{serve['advance_chunks']} RPCs "
        f"({serve['advance_jumped_steps']} ticks came from horizon jumps)",
        "checksums " + ("bitwise-identical events on vs off"
                        if artifact["checksums_match"]
                        else "DIVERGE — events bug"),
    ]
    if "path" in artifact:
        notes.append(f"artifact written to {artifact['path']}")
    return ExperimentReport(
        experiment="EventScheduling",
        title="Event-driven quiescence scheduling (wall clock)",
        headers=["workload", "agents", "iters", "off_wall_s", "on_wall_s",
                 "speedup", "jumps", "max_jump", "deferred", "checksums"],
        rows=rows,
        notes=notes,
    )


def main() -> None:
    """Print the rendered report to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
