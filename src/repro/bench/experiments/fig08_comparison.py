"""Figure 8: comparison with Cortex3D and NetLogo.

Real wall-clock measurements (not the virtual machine): the baselines are
actual slow engines, run at the paper's *small* scales (scaled down
further so the suite stays fast).  For each benchmark the optimizations
are progressively switched on, as in the paper's stacked panels:

- proliferation (small), epidemiology (small), neurite growth (small) —
  single-threaded comparisons against both baselines;
- epidemiology (medium-scale) — our engine may use all virtual threads,
  NetLogo-like remains serial.

Speedups are ours-vs-baseline wall-time ratios; memory ratios use
tracemalloc peaks for the baselines and the simulated footprint for us.
"""

from __future__ import annotations

import time
import tracemalloc

from repro.baselines import Cortex3DLike, NetLogoLike
from repro.bench.stack import stack_params
from repro.bench.tables import ExperimentReport
from repro.simulations import get_simulation

__all__ = ["run", "main"]

SCALES = {
    # Agent counts must sit in the paper's small-scale band (2k-30k) or the
    # vectorized engine's fixed per-iteration costs dominate; "small" uses
    # the low end of that band.
    "small": dict(
        benches=[
            ("proliferation", "cell_proliferation", "run_proliferation", 1200, 5),
            ("epidemiology", "epidemiology", "run_epidemiology", 1500, 5),
            ("neurite_growth", None, "run_neurite_growth", 800, 40),
        ],
        n_medium=6000,
        iters_medium=5,
    ),
    "medium": dict(
        benches=[
            ("proliferation", "cell_proliferation", "run_proliferation", 4000, 8),
            ("epidemiology", "epidemiology", "run_epidemiology", 5000, 8),
            ("neurite_growth", None, "run_neurite_growth", 2000, 80),
        ],
        n_medium=20_000,
        iters_medium=8,
    ),
}


def _build_single_neuron(n, param):
    """Single-neuron growth matching the Cortex3D baseline model exactly
    (same stub count, speed, segment length, bifurcation rate, cap)."""
    from repro import Param, Simulation
    from repro.neuro import NeuriteExtension, add_neuron

    sim = Simulation("neurite-fig8", param, seed=0)
    sim.fixed_interaction_radius = 5.0
    ext = NeuriteExtension(speed=80.0, max_segment_length=6.0,
                           bifurcation_probability=0.03, max_agents=n)
    _, tips = add_neuron(sim, [50.0, 50.0, 50.0], num_neurites=3)
    sim.attach_behavior(tips, ext)
    return sim


def _run_ours(sim_name, n, iterations, param):
    # Timing run (one warm iteration first to absorb lazy numpy imports),
    # then a separate tracemalloc run for the memory peak — tracemalloc
    # distorts runtimes.
    def build():
        if sim_name is None:  # the symmetric single-neuron model
            return _build_single_neuron(n, param)
        return get_simulation(sim_name).build(n, param=param, seed=0)

    sim = build()
    sim.simulate(1)
    t0 = time.perf_counter()
    sim.simulate(iterations)
    wall = time.perf_counter() - t0
    tracemalloc.start()
    sim2 = build()
    sim2.simulate(iterations)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return wall, peak


def run(scale: str = "small") -> ExperimentReport:
    """Execute the experiment at the given scale; returns its report."""
    cfg = SCALES[scale]
    rows = []
    notes = []
    stack = stack_params()

    for label, sim_name, method, n, iters in cfg["benches"]:
        c3d = getattr(Cortex3DLike(), method)(n, iters, seed=0)
        nl = (
            getattr(NetLogoLike(), method)(n, iters, seed=0)
            if hasattr(NetLogoLike(), method)
            else None
        )
        for cfg_label, param in stack:
            wall, peak = _run_ours(sim_name, n, iters, param)
            rows.append(
                [label, cfg_label,
                 round(c3d.wall_seconds / wall, 2),
                 round(nl.wall_seconds / wall, 2) if nl else "",
                 round(c3d.memory_bytes / max(peak, 1), 2),
                 round(wall * 1e3, 1)]
            )

    # Medium-scale epidemiology: ours fully optimized vs NetLogo-like.
    n, iters = cfg["n_medium"], cfg["iters_medium"]
    nl = NetLogoLike().run_epidemiology(n, iters, seed=0)
    full_label, full_param = stack[-1]
    wall, peak = _run_ours("epidemiology", n, iters, full_param)
    rows.append(
        ["epidemiology_medium", full_label, "",
         round(nl.wall_seconds / wall, 2),
         round(nl.memory_bytes / max(peak, 1), 2),
         round(wall * 1e3, 1)]
    )
    notes.append(
        "paper: small-scale speedup up to 78.8x at 2.49x less memory; "
        "medium-scale: three orders of magnitude faster, two orders less memory; "
        "absolute ratios here shrink with the reduced agent counts"
    )
    return ExperimentReport(
        experiment="Figure 8",
        title="Wall-clock comparison with Cortex3D-like and NetLogo-like engines",
        headers=["benchmark", "config", "speedup_vs_cortex3d",
                 "speedup_vs_netlogo", "mem_ratio_vs_cortex3d", "ours_ms"],
        rows=rows,
        notes=notes,
    )


def main() -> None:
    """Print the rendered report to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
