"""Figure 13: memory allocator comparison.

Four configurations per simulation, as in the paper: the BioDynaMo pool
allocator only covers agents and behaviors, so another allocator handles
the remaining objects.

======================  =========================  ======================
configuration            agents & behaviors          other objects
======================  =========================  ======================
``bdm+ptmalloc2``        pool allocator              ptmalloc2-like
``bdm+jemalloc``         pool allocator              jemalloc-like
``ptmalloc2``            ptmalloc2-like              ptmalloc2-like
``jemalloc``             jemalloc-like               jemalloc-like
======================  =========================  ======================

(tcmalloc deadlocked in the paper's benchmarking and is not modeled.)
Reported: speedup over the all-ptmalloc2 configuration and relative memory
consumption.  Paper: pool up to 1.52x over ptmalloc2 (median 1.19x), up to
1.40x over jemalloc (median 1.15x), with slightly *less* memory.
"""

from __future__ import annotations

from repro.bench.runner import run_benchmark
from repro.bench.tables import ExperimentReport
from repro.simulations import TABLE1_ORDER, get_simulation

__all__ = ["run", "main", "CONFIGS"]

SCALES = {
    "small": dict(num_agents=2000, iterations=8, warmup=10),
    "medium": dict(num_agents=8000, iterations=15, warmup=15),
}

CONFIGS = (
    ("bdm+ptmalloc2", "bdm", "ptmalloc2"),
    ("bdm+jemalloc", "bdm", "jemalloc"),
    ("ptmalloc2", "ptmalloc2", "ptmalloc2"),
    ("jemalloc", "jemalloc", "jemalloc"),
)


def run(scale: str = "small") -> ExperimentReport:
    """Execute the experiment at the given scale; returns its report."""
    cfg = SCALES[scale]
    rows = []
    for name in TABLE1_ORDER:
        results = {}
        for label, agent_alloc, other_alloc in CONFIGS:
            param = get_simulation(name).default_param().with_(
                agent_allocator=agent_alloc, other_allocator=other_alloc
            )
            results[label] = run_benchmark(
                name, cfg["num_agents"], cfg["iterations"], param=param,
                config=label, warmup_iterations=cfg["warmup"],
            )
        base = results["ptmalloc2"]
        for label, *_ in CONFIGS:
            res = results[label]
            rows.append(
                [name, label,
                 round(base.virtual_seconds / res.virtual_seconds, 3),
                 round(res.peak_memory_bytes / base.peak_memory_bytes, 3),
                 res.virtual_s_per_iteration * 1e3]
            )
    return ExperimentReport(
        experiment="Figure 13",
        title="Allocator comparison (speedup and memory vs all-ptmalloc2)",
        headers=["simulation", "config", "speedup_vs_ptmalloc2",
                 "memory_vs_ptmalloc2", "ms_per_iteration"],
        rows=rows,
        notes=[
            "paper: bdm median speedup 1.19x over ptmalloc2 and 1.15x over "
            "jemalloc; bdm memory 1.41%/2.43% lower on average",
        ],
    )


def main() -> None:
    """Print the rendered report to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
