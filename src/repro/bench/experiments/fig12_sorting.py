"""Figure 12: agent sorting and balancing frequency study.

Speedup over "no sorting" for sorting frequencies 1..50, on four NUMA
domains / 144 threads (left panel) and one domain / 18 threads (right).
The paper's expectations: oncology and cell clustering benefit most
(random initialization), cell proliferation less (lattice init), the
epidemiology benefit is smallest (agents shuffle randomly over large
distances every step), and the neuroscience benefit is suppressed when
static detection already removes most neighbor traffic.
"""

from __future__ import annotations

from repro.bench.runner import run_benchmark
from repro.bench.tables import ExperimentReport
from repro.simulations import TABLE1_ORDER, get_simulation

__all__ = ["run", "main"]

SCALES = {
    "small": dict(num_agents=2000, iterations=10, warmup=10, frequencies=(1, 5, 10, 20)),
    "medium": dict(num_agents=8000, iterations=20, warmup=20,
                   frequencies=(1, 2, 5, 10, 20, 50)),
}

MACHINES = (
    ("4dom/144thr", None, None),
    ("1dom/18thr", 18, 1),
)


def run(scale: str = "small") -> ExperimentReport:
    """Execute the experiment at the given scale; returns its report."""
    cfg = SCALES[scale]
    rows = []
    for name in TABLE1_ORDER:
        for mlabel, threads, domains in MACHINES:
            param0 = get_simulation(name).default_param().with_(
                agent_sort_frequency=0
            )
            base = run_benchmark(name, cfg["num_agents"], cfg["iterations"],
                                 param=param0, num_threads=threads,
                                 num_domains=domains, config="no_sorting",
                                 warmup_iterations=cfg["warmup"])
            for freq in cfg["frequencies"]:
                param = param0.with_(agent_sort_frequency=freq)
                res = run_benchmark(name, cfg["num_agents"], cfg["iterations"],
                                    param=param, num_threads=threads,
                                    num_domains=domains, config=f"freq={freq}",
                                    warmup_iterations=cfg["warmup"])
                rows.append(
                    [name, mlabel, freq,
                     round(base.virtual_seconds / res.virtual_seconds, 3),
                     res.virtual_s_per_iteration * 1e3]
                )
    return ExperimentReport(
        experiment="Figure 12",
        title="Agent sorting speedup vs sorting frequency (baseline: no sorting)",
        headers=["simulation", "machine", "frequency", "speedup",
                 "ms_per_iteration"],
        rows=rows,
        notes=[
            "paper peaks (4 domains): oncology 5.77x, clustering 4.56x, "
            "proliferation 1.82x (lattice init), epidemiology 1.14x, "
            "neuroscience below average unless static detection is off",
        ],
    )


def main() -> None:
    """Print the rendered report to stdout."""
    print(run().render())


if __name__ == "__main__":
    main()
