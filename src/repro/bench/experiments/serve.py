"""Session-server throughput and latency (``python -m repro bench serve``).

Three wall-clock phases over the real serve stack (not a simulated
machine):

1. **Session churn** — create+delete round-trips through an in-process
   pool: sessions/second, the "how fast can tenants come and go" number.
2. **Concurrent step latency** — a real socket server
   (:class:`~repro.serve.server.ServerThread`) with ``tenants``
   client threads, each owning one session on its own connection and
   stepping it ``steps`` times; per-request wall latencies aggregate to
   p50/p99 and total steps/second.  This is the multi-tenant number the
   ROADMAP's "heavy traffic" north star cares about.
3. **Evict/resume round-trip** — two sessions ping-ponging through a
   ``max_resident=1`` pool, so *every* touch checkpoints one session
   out and restores the other: the measured step cost is the full
   evict→spool→rebuild→restore cycle, reported next to the resident
   step cost from phase 2 for interpretation.

``BENCH_serve.json`` records all three plus the pool's final ``serve:*``
counters (CI asserts their presence).  Latencies on a loaded CI box are
upper bounds; the ratio between resident and evicted step cost is the
robust signal.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.bench.tables import ExperimentReport

__all__ = ["run", "SCALES", "DEFAULT_MODEL"]

DEFAULT_MODEL = "cell_proliferation"

SCALES = {
    "small": dict(tenants=8, steps=20, agents=120, churn_sessions=12),
    "medium": dict(tenants=16, steps=40, agents=400, churn_sessions=30),
}


def _phase_churn(model: str, agents: int, churn_sessions: int,
                 pool_workers: int) -> dict:
    """Create+delete throughput through an in-process pool."""
    from repro.serve import SessionClient

    with SessionClient.in_process(
        workers=pool_workers, max_resident=max(4, churn_sessions)
    ) as client:
        t0 = time.perf_counter()
        for i in range(churn_sessions):
            handle = client.create_session(model, agents=agents, seed=i)
            handle.delete()
        wall = time.perf_counter() - t0
    return {
        "sessions": churn_sessions,
        "wall_seconds": wall,
        "sessions_per_second": churn_sessions / wall if wall > 0 else 0.0,
    }


def _phase_latency(model: str, agents: int, tenants: int, steps: int,
                   pool_workers: int) -> tuple[dict, dict]:
    """Concurrent socket tenants; returns (record, serve metrics)."""
    from repro.serve import ServerThread, SessionClient
    from repro.serve.pool import SessionPool

    pool = SessionPool(workers=pool_workers, max_resident=tenants)
    latencies: list[list[float]] = [[] for _ in range(tenants)]
    errors: list[str] = []
    barrier = threading.Barrier(tenants)

    def tenant(idx: int) -> None:
        try:
            with SessionClient.connect(port=server.port) as client:
                handle = client.create_session(
                    model, agents=agents, seed=idx, name=f"tenant-{idx}"
                )
                barrier.wait(timeout=120)
                lat = latencies[idx]
                for _ in range(steps):
                    t0 = time.perf_counter()
                    handle.step(1)
                    lat.append(time.perf_counter() - t0)
                handle.delete()
        except Exception as exc:  # noqa: BLE001 - surfaced in the artifact
            errors.append(f"tenant {idx}: {type(exc).__name__}: {exc}")

    with ServerThread(pool) as server:
        threads = [
            threading.Thread(target=tenant, args=(i,), daemon=True)
            for i in range(tenants)
        ]
        wall0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=600)
        wall = time.perf_counter() - wall0
    metrics = {
        k: v for k, v in pool.obs.registry.snapshot().items()
        if k.startswith("serve:")
    }
    pool.shutdown()
    flat = np.array([x for lat in latencies for x in lat], dtype=float)
    record = {
        "tenants": tenants,
        "steps_per_tenant": steps,
        "total_steps": int(flat.size),
        "wall_seconds": wall,
        "steps_per_second": float(flat.size / wall) if wall > 0 else 0.0,
        "p50_ms": float(np.percentile(flat, 50) * 1e3) if flat.size else 0.0,
        "p99_ms": float(np.percentile(flat, 99) * 1e3) if flat.size else 0.0,
        "mean_ms": float(flat.mean() * 1e3) if flat.size else 0.0,
        "errors": errors,
    }
    return record, metrics


def _phase_evict_resume(model: str, agents: int, rounds: int) -> dict:
    """Step cost when every touch is an evict→resume round trip."""
    from repro.serve import SessionClient

    with SessionClient.in_process(workers=1, max_resident=1) as client:
        a = client.create_session(model, agents=agents, seed=0, name="a")
        b = client.create_session(model, agents=agents, seed=1, name="b")
        # b is resident now, a was evicted to make room; from here on
        # every alternating step pays checkpoint(victim)+restore(target).
        costs = []
        resumed = 0
        for i in range(rounds):
            handle = a if i % 2 == 0 else b
            t0 = time.perf_counter()
            reply = handle.step(1)
            costs.append(time.perf_counter() - t0)
            resumed += bool(reply.resumed)
        metrics = {
            k: v for k, v in client.pool.obs.registry.snapshot().items()
            if k.startswith("serve:")
        }
        a.delete()
        b.delete()
    arr = np.array(costs, dtype=float)
    return {
        "rounds": rounds,
        "resumed_steps": resumed,
        "evictions": metrics.get("serve:evictions", 0),
        "resume_count": metrics.get("serve:resume_count", 0),
        "mean_round_trip_ms": float(arr.mean() * 1e3),
        "p50_round_trip_ms": float(np.percentile(arr, 50) * 1e3),
    }


def run(
    scale: str = "small",
    model: str = DEFAULT_MODEL,
    tenants: int | None = None,
    steps: int | None = None,
    agents: int | None = None,
    out: str | os.PathLike | None = "BENCH_serve.json",
) -> ExperimentReport:
    """Run all three phases; write the JSON artifact unless ``out=None``."""
    cfg = SCALES[scale]
    tenants = int(tenants) if tenants is not None else cfg["tenants"]
    steps = int(steps) if steps is not None else cfg["steps"]
    agents = int(agents) if agents is not None else cfg["agents"]
    pool_workers = max(2, min(4, (os.cpu_count() or 2) - 1))

    churn = _phase_churn(model, agents, cfg["churn_sessions"], pool_workers)
    latency, serve_metrics = _phase_latency(
        model, agents, tenants, steps, pool_workers
    )
    evict = _phase_evict_resume(model, agents, rounds=10)

    artifact = {
        "experiment": "serve",
        "model": model,
        "agents": agents,
        "scale": scale,
        "cpu_count": os.cpu_count(),
        "pool_workers": pool_workers,
        "session_churn": churn,
        "step_latency": latency,
        "evict_resume": evict,
        "metrics": serve_metrics,
    }
    if out is not None:
        Path(out).write_text(json.dumps(artifact, indent=2, sort_keys=True))

    rows = [
        ["sessions/sec (create+delete)",
         round(churn["sessions_per_second"], 2)],
        [f"steps/sec ({tenants} tenants)",
         round(latency["steps_per_second"], 2)],
        ["step p50 (ms)", round(latency["p50_ms"], 3)],
        ["step p99 (ms)", round(latency["p99_ms"], 3)],
        ["evict+resume round trip p50 (ms)",
         round(evict["p50_round_trip_ms"], 3)],
        ["evictions observed", evict["evictions"]],
    ]
    notes = [
        f"{tenants} concurrent socket tenants x {steps} steps, "
        f"{pool_workers} pool workers, model={model}, agents={agents}",
        "evict/resume phase: max_resident=1, alternating sessions — every "
        "step pays a full checkpoint+restore cycle",
    ]
    if latency["errors"]:
        notes.append(f"TENANT ERRORS: {latency['errors']}")
    if out is not None:
        notes.append(f"artifact -> {out}")
    return ExperimentReport(
        experiment="serve",
        title="multi-tenant session server throughput/latency",
        headers=["metric", "value"],
        rows=rows,
        notes=notes,
    )
