"""Simulated shared-memory NUMA machine.

The paper's results depend on multi-socket NUMA servers (Table 2) that are
not available here (see DESIGN.md §2).  This subpackage provides a
*mechanistic* substitute: machine descriptions, virtual threads with
per-thread cycle clocks, OpenMP-style parallel regions with static /
dynamic / NUMA-aware scheduling and the paper's two-level work stealing
(§4.1), and a memory cost model that charges cache-level latencies based on
address locality plus a remote-DRAM penalty for cross-domain accesses.

A parallel region's virtual elapsed time is the makespan of its scheduled
blocks; serial regions charge a single thread.  All figure benchmarks report
this virtual time.
"""

from repro.parallel.topology import MachineSpec, SYSTEM_A, SYSTEM_B, SYSTEM_C
from repro.parallel.costmodel import MemoryCostModel, CacheSim
from repro.parallel.machine import Machine, WorkBlock, SchedulePolicy

__all__ = [
    "MachineSpec",
    "SYSTEM_A",
    "SYSTEM_B",
    "SYSTEM_C",
    "MemoryCostModel",
    "CacheSim",
    "Machine",
    "WorkBlock",
    "SchedulePolicy",
]
