"""Pluggable execution backends for the scheduler's mechanics stage.

``Param.execution_backend`` selects how the most expensive part of
Algorithm 1 — mechanical forces + displacement, and vectorizable
:class:`~repro.core.operation.AgentOperation` kernels — is executed:

- ``"serial"`` (:class:`SerialBackend`, the default): the original
  single-process NumPy path, unchanged.
- ``"process"`` (:class:`~repro.parallel.process_backend.ProcessBackend`):
  a pool of persistent worker processes operating on shared-memory
  columns (:mod:`repro.parallel.shm`) with the paper's two-level work
  stealing — real multicore parallelism, outside the GIL.

Both backends are *bitwise equivalent*: chunked reductions accumulate in
the same per-row order as the serial ``np.bincount``, so per-step
:func:`repro.verify.snapshot.state_checksum` values match exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.force import ForceResult
from repro.kernels import numpy_ref
from repro.kernels.api import MOVE_EPSILON  # noqa: F401  (canonical home)

__all__ = [
    "MOVE_EPSILON",
    "ExecutionBackend",
    "SerialBackend",
    "apply_displacement",
    "make_backend",
]


def apply_displacement(positions, moved_flags, net_force, dt,
                       max_displacement) -> np.ndarray:
    """Forward-Euler displacement with clamping; returns the moved mask.

    Delegates to :func:`repro.kernels.numpy_ref.displace`, the bitwise
    reference implementation shared with the kernel-backend dispatch.
    Shared by the serial backend (full arrays) and the process backend's
    chunk kernel (row slices): every operation is row-elementwise, so
    chunked execution is bitwise identical to the full-array call.
    """
    return numpy_ref.displace(positions, moved_flags, net_force, dt,
                              max_displacement)


class ExecutionBackend:
    """Strategy interface the scheduler dispatches stage execution to."""

    name = "base"

    def force_and_displace(self, sim, indptr, indices,
                           detect: bool) -> ForceResult:
        """Compute net forces over the CSR neighbor lists and apply the
        clamped Euler displacement (updating ``position`` and ``moved``
        in place).  Returns the :class:`ForceResult` for static-detection
        and cost accounting."""
        raise NotImplementedError

    def run_agent_operation(self, sim, op) -> None:
        """Execute one :class:`AgentOperation` (chunked when the backend
        and the operation support it; serial fallback otherwise)."""
        op.run(sim)

    def shutdown(self) -> None:
        """Release pools/queues; idempotent."""

    def stats(self) -> dict:
        """Backend-specific counters (steals, phases) for reporting."""
        return {}


class SerialBackend(ExecutionBackend):
    """The original in-process path, now routed through the kernel
    backend selected by ``Param.kernel_backend`` (NumPy by default —
    bitwise identical to the historical inline implementation)."""

    name = "serial"

    def force_and_displace(self, sim, indptr, indices, detect):
        rm = sim.rm
        p = sim.param
        active = ~rm.data["static"] if detect else None
        kb = getattr(sim, "kernels", None)
        if kb is None:
            # Bare scheduler harnesses without a full Simulation.
            from repro.kernels.numpy_ref import NumpyKernelBackend

            kb = sim.kernels = NumpyKernelBackend()
        net, nonzero, pairs = kb.force(
            sim.force, rm.positions, rm.data["diameter"], indptr, indices,
            active,
        )
        kb.displace(
            rm.positions, rm.data["moved"], net,
            p.simulation_time_step, p.simulation_max_displacement,
        )
        return ForceResult(net, nonzero, pairs)


def make_backend(sim) -> ExecutionBackend:
    """Instantiate the backend selected by ``sim.param.execution_backend``."""
    if sim.param.execution_backend == "process":
        from repro.parallel.process_backend import ProcessBackend

        return ProcessBackend(sim)
    return SerialBackend()
