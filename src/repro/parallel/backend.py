"""Pluggable execution backends for the scheduler's mechanics stage.

``Param.execution_backend`` selects how the most expensive part of
Algorithm 1 — mechanical forces + displacement, and vectorizable
:class:`~repro.core.operation.AgentOperation` kernels — is executed:

- ``"serial"`` (:class:`SerialBackend`, the default): the original
  single-process NumPy path, unchanged.
- ``"process"`` (:class:`~repro.parallel.process_backend.ProcessBackend`):
  a pool of persistent worker processes operating on shared-memory
  columns (:mod:`repro.parallel.shm`) with the paper's two-level work
  stealing — real multicore parallelism, outside the GIL.

Both backends are *bitwise equivalent*: chunked reductions accumulate in
the same per-row order as the serial ``np.bincount``, so per-step
:func:`repro.verify.snapshot.state_checksum` values match exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.force import ForceResult

__all__ = [
    "MOVE_EPSILON",
    "ExecutionBackend",
    "SerialBackend",
    "apply_displacement",
    "make_backend",
]

#: Movement below this threshold does not count as "moved" (condition i of
#: the §5 static-detection mechanism).  Canonical definition; re-exported
#: by :mod:`repro.core.scheduler` for its historical importers.
MOVE_EPSILON = 1e-9


def apply_displacement(positions, moved_flags, net_force, dt,
                       max_displacement) -> np.ndarray:
    """Forward-Euler displacement with clamping; returns the moved mask.

    Shared by the serial backend (full arrays) and the process backend's
    chunk kernel (row slices): every operation here is row-elementwise,
    so chunked execution is bitwise identical to the full-array call.
    """
    disp = net_force * dt
    norm = np.linalg.norm(disp, axis=1)
    too_far = norm > max_displacement
    if np.any(too_far):
        disp[too_far] *= (max_displacement / norm[too_far])[:, None]
    moved_now = norm > MOVE_EPSILON
    positions[moved_now] += disp[moved_now]
    moved_flags |= moved_now
    return moved_now


class ExecutionBackend:
    """Strategy interface the scheduler dispatches stage execution to."""

    name = "base"

    def force_and_displace(self, sim, indptr, indices,
                           detect: bool) -> ForceResult:
        """Compute net forces over the CSR neighbor lists and apply the
        clamped Euler displacement (updating ``position`` and ``moved``
        in place).  Returns the :class:`ForceResult` for static-detection
        and cost accounting."""
        raise NotImplementedError

    def run_agent_operation(self, sim, op) -> None:
        """Execute one :class:`AgentOperation` (chunked when the backend
        and the operation support it; serial fallback otherwise)."""
        op.run(sim)

    def shutdown(self) -> None:
        """Release pools/queues; idempotent."""

    def stats(self) -> dict:
        """Backend-specific counters (steals, phases) for reporting."""
        return {}


class SerialBackend(ExecutionBackend):
    """The original in-process NumPy path."""

    name = "serial"

    def force_and_displace(self, sim, indptr, indices, detect):
        rm = sim.rm
        p = sim.param
        active = ~rm.data["static"] if detect else None
        res = sim.force.compute(
            rm.positions, rm.data["diameter"], indptr, indices, active
        )
        apply_displacement(
            rm.positions, rm.data["moved"], res.net_force,
            p.simulation_time_step, p.simulation_max_displacement,
        )
        return res


def make_backend(sim) -> ExecutionBackend:
    """Instantiate the backend selected by ``sim.param.execution_backend``."""
    if sim.param.execution_backend == "process":
        from repro.parallel.process_backend import ProcessBackend

        return ProcessBackend(sim)
    return SerialBackend()
