"""Pluggable execution backends for the scheduler's mechanics stage.

``Param.execution_backend`` selects how the most expensive part of
Algorithm 1 — mechanical forces + displacement, and vectorizable
:class:`~repro.core.operation.AgentOperation` kernels — is executed:

- ``"serial"`` (:class:`SerialBackend`, the default): the original
  single-process NumPy path, unchanged.
- ``"process"`` (:class:`~repro.parallel.process_backend.ProcessBackend`):
  a pool of persistent worker processes operating on shared-memory
  columns (:mod:`repro.parallel.shm`) with the paper's two-level work
  stealing — real multicore parallelism, outside the GIL.
- ``"distributed"``
  (:class:`~repro.distributed.shard_backend.DistributedBackend`): spatial
  decomposition across OS-process shards with halo exchange and
  delta-encoded migration — the TeraAgent-style scale-out path.
- ``"auto"`` (:class:`AutoBackend`): measures and picks.  Starts serial,
  feeds every mechanics timing to a
  :class:`~repro.parallel.costmodel.BackendCostModel`, and re-decides at
  every environment-rebuild boundary (the scheduler calls
  :meth:`ExecutionBackend.on_environment_rebuild`), so small populations
  never pay the pool's orchestration tax and large ones get the cores.
  With ``backend_shards > 0`` the distributed backend joins the
  candidate set as a third option.

All backends are *bitwise equivalent*: chunked reductions accumulate in
the same per-row order as the serial ``np.bincount``, so per-step
:func:`repro.verify.snapshot.state_checksum` values match exactly —
which is also why auto may switch mid-run without perturbing results.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.force import ForceResult
from repro.kernels import numpy_ref
from repro.kernels.api import MOVE_EPSILON  # noqa: F401  (canonical home)

__all__ = [
    "MOVE_EPSILON",
    "ExecutionBackend",
    "SerialBackend",
    "AutoBackend",
    "apply_displacement",
    "make_backend",
]


def apply_displacement(positions, moved_flags, net_force, dt,
                       max_displacement) -> np.ndarray:
    """Forward-Euler displacement with clamping; returns the moved mask.

    Delegates to :func:`repro.kernels.numpy_ref.displace`, the bitwise
    reference implementation shared with the kernel-backend dispatch.
    Shared by the serial backend (full arrays) and the process backend's
    chunk kernel (row slices): every operation is row-elementwise, so
    chunked execution is bitwise identical to the full-array call.
    """
    return numpy_ref.displace(positions, moved_flags, net_force, dt,
                              max_displacement)


class ExecutionBackend:
    """Strategy interface the scheduler dispatches stage execution to."""

    name = "base"

    def force_and_displace(self, sim, indptr, indices,
                           detect: bool) -> ForceResult:
        """Compute net forces over the CSR neighbor lists and apply the
        clamped Euler displacement (updating ``position`` and ``moved``
        in place).  Returns the :class:`ForceResult` for static-detection
        and cost accounting."""
        raise NotImplementedError

    def run_agent_operation(self, sim, op) -> None:
        """Execute one :class:`AgentOperation` (chunked when the backend
        and the operation support it; serial fallback otherwise)."""
        op.run(sim)

    def stash_csr_positions(self, rm) -> None:
        """Hook called by the scheduler right after the neighbor CSR is
        materialized, before behaviors may move agents.  Backends that
        rebuild neighbor lists from positions (the distributed shards)
        snapshot ``rm.positions`` here; everyone else ignores it."""

    def shutdown(self) -> None:
        """Release pools/queues; idempotent."""

    def on_environment_rebuild(self, sim) -> None:
        """Hook called by the scheduler after every environment rebuild —
        the natural boundary for adaptive re-decisions (population and
        structure just changed).  No-op for fixed backends."""

    def stats(self) -> dict:
        """Backend-specific counters (steals, phases) for reporting."""
        return {}


class SerialBackend(ExecutionBackend):
    """The original in-process path, now routed through the kernel
    backend selected by ``Param.kernel_backend`` (NumPy by default —
    bitwise identical to the historical inline implementation)."""

    name = "serial"

    def force_and_displace(self, sim, indptr, indices, detect):
        rm = sim.rm
        p = sim.param
        active = ~rm.data["static"] if detect else None
        kb = getattr(sim, "kernels", None)
        if kb is None:
            # Bare scheduler harnesses without a full Simulation.
            from repro.kernels.numpy_ref import NumpyKernelBackend

            kb = sim.kernels = NumpyKernelBackend()
        # Device-resident backends (CuPy) key persistent buffers on this:
        # a changed structure version invalidates cached device columns.
        kb.structure_version = rm.structure_version
        kb.bind_arena(getattr(rm, "soa", None), rm.n)
        net, nonzero, pairs = kb.force(
            sim.force, rm.positions, rm.data["diameter"], indptr, indices,
            active,
        )
        kb.displace(
            rm.positions, rm.data["moved"], net,
            p.simulation_time_step, p.simulation_max_displacement,
        )
        return ForceResult(net, nonzero, pairs)


class AutoBackend(ExecutionBackend):
    """Adaptive backend: measured serial-vs-process decision per run.

    Starts on the serial path (correct and cheap at any size), times
    every mechanics call into a
    :class:`~repro.parallel.costmodel.BackendCostModel`, and re-decides
    at environment-rebuild boundaries.  The process pool is constructed
    lazily on the first switch — a run the model keeps serial never forks
    a worker.  Because serial and process execution are bitwise
    identical, switching mid-run does not perturb per-step checksums.

    Surfaced metrics: ``backend:auto_decisions`` / ``backend:auto_switches``
    counters, and ``backend:auto_process`` / ``backend:process_overhead_ratio``
    gauges (the latter is the measured per-step process/serial wall-cost
    ratio the bench-scaling artifact reports).
    """

    name = "auto"

    def __init__(self, sim):
        from repro.parallel.costmodel import BackendCostModel

        self.sim = sim
        self._serial = SerialBackend()
        self._process = None  # built lazily on first switch
        self._distributed = None  # built lazily on first switch
        workers = int(sim.param.backend_workers) or (os.cpu_count() or 1)
        self.model = BackendCostModel(
            workers, min_agents=int(sim.param.backend_chunk_size),
            shards=int(sim.param.backend_shards))
        self.active: ExecutionBackend = self._serial
        self.last_decision = None
        self._last_n = 0
        reg = sim.obs.registry
        self._decisions = reg.counter("backend:auto_decisions")
        self._switches = reg.counter("backend:auto_switches")
        reg.register_callback(
            "backend:auto_process",
            lambda: 0.0 if self.active is self._serial else 1.0)
        reg.register_callback(
            "backend:process_overhead_ratio",
            lambda: self.model.process_overhead_ratio(self._last_n))

    # -- delegation ------------------------------------------------------ #

    def force_and_displace(self, sim, indptr, indices, detect):
        t0 = time.perf_counter()
        result = self.active.force_and_displace(sim, indptr, indices, detect)
        seconds = time.perf_counter() - t0
        if self.active is self._serial:
            self.model.observe_serial(sim.rm.n, seconds)
        elif self.active is self._distributed:
            self.model.observe_distributed(sim.rm.n, seconds)
        else:
            self.model.observe_process(sim.rm.n, seconds)
        return result

    def run_agent_operation(self, sim, op) -> None:
        self.active.run_agent_operation(sim, op)

    def stash_csr_positions(self, rm) -> None:
        self.active.stash_csr_positions(rm)

    def on_environment_rebuild(self, sim) -> None:
        n = sim.rm.n
        churn = abs(n - self._last_n) / max(1, n)
        self._last_n = n
        decision = self.model.decide(n, self.active.name, churn_rate=churn)
        self.last_decision = decision
        self._decisions.inc()
        if decision.backend != self.active.name:
            self._activate(decision.backend)

    def _activate(self, backend_name: str) -> None:
        if backend_name == "process" and self._process is None:
            from repro.parallel.process_backend import ProcessBackend

            self._process = ProcessBackend(self.sim)
        if backend_name == "distributed" and self._distributed is None:
            from repro.distributed.shard_backend import DistributedBackend

            self._distributed = DistributedBackend(self.sim)
        self.active = {
            "serial": self._serial,
            "process": self._process,
            "distributed": self._distributed,
        }[backend_name]
        self._switches.inc()

    def shutdown(self) -> None:
        if self._process is not None:
            self._process.shutdown()
        if self._distributed is not None:
            self._distributed.shutdown()

    def stats(self) -> dict:
        out = {
            "auto_decisions": int(self._decisions.value),
            "auto_switches": int(self._switches.value),
            "active": self.active.name,
        }
        if self.last_decision is not None:
            out["last_decision"] = self.last_decision.as_dict()
        if self._process is not None:
            out["process"] = self._process.stats()
        if self._distributed is not None:
            out["distributed"] = self._distributed.stats()
        return out


def make_backend(sim) -> ExecutionBackend:
    """Instantiate the backend selected by ``sim.param.execution_backend``."""
    choice = sim.param.execution_backend
    if choice == "process":
        from repro.parallel.process_backend import ProcessBackend

        return ProcessBackend(sim)
    if choice == "distributed":
        if sim.machine is not None:
            # Virtual-machine cost-model runs stay serial (see "auto").
            return SerialBackend()
        from repro.distributed.shard_backend import DistributedBackend

        return DistributedBackend(sim)
    if choice == "auto":
        if sim.machine is not None:
            # Virtual-machine cost-model runs are always serial: wall
            # time is meaningless there, so there is nothing to adapt.
            return SerialBackend()
        return AutoBackend(sim)
    return SerialBackend()
