"""Process-pool execution backend: real multicore parallelism (§4.1).

A pool of persistent daemon workers maps the simulation's shared-memory
arena (:mod:`repro.parallel.shm`) once and then executes *phases*: the
host partitions the agent range into domain-major chunks, loads them into
the two-level stealing queues (:mod:`repro.parallel.steal`), broadcasts a
tiny phase message (arena layout + array shapes + kernel name + pickled
scalar args — never agent data), and waits for one acknowledgment per
worker.  Workers drain their own queue front-to-back, then steal — same
NUMA domain first, then cross-domain (paper Fig. 2 steps 4–5).

Determinism.  The mechanics stage runs as two globally barriered phases —
``mech_force`` (all reads of ``position`` happen here) then
``mech_displace`` (all writes) — preserving the serial read-all-then-
write-all semantics.  Within ``mech_force``, each chunk accumulates its
rows' CSR pairs with a local ``np.bincount``; pairs of one row are summed
in the same sequential order as the serial full-array bincount, and rows
are written to disjoint slices, so the merged net force is *bitwise
identical* to :meth:`InteractionForce.compute` no matter which worker ran
which chunk or in what order.  The per-chunk pair counts are summed on
the host in fixed chunk order.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import time
import traceback

import numpy as np

from repro.core.force import ForceResult
from repro.kernels.dispatch import worker_kernels
from repro.parallel.backend import ExecutionBackend
from repro.parallel.shm import COLUMN_PREFIX, WorkerArena
from repro.parallel.steal import StealQueues

__all__ = ["ProcessBackend", "BackendError"]

#: Seconds the host waits for any single worker acknowledgment before
#: declaring the pool dead (a worker crash would otherwise hang the step).
ACK_TIMEOUT_S = 120.0


class BackendError(RuntimeError):
    """A worker failed, died, or the pool lost synchronization."""


# --------------------------------------------------------------------- #
# Kernels — run inside workers, over shared-memory views.
# --------------------------------------------------------------------- #

def k_force(views, cid, lo, hi, args):
    """Net force + nonzero-force counts for rows [lo, hi).

    Dispatches to the worker's kernel backend (``args["_kb"]``, resolved
    by :func:`worker_main` from the parent's ``kernel_backend``): shm
    column views feed the kernel zero-copy and rows land in disjoint
    ``net``/``nz`` slices, so the NumPy backend remains bitwise identical
    to the serial full-array call (see the module docstring).
    """
    net = views["mech:net_force"]
    nz = views["mech:nonzero"]
    pairs = views["mech:chunk_pairs"]
    active = None
    if args["detect"]:
        # Negate once per phase (args is per-phase, per-worker).
        active = args.get("_active")
        if active is None:
            active = args["_active"] = ~views[COLUMN_PREFIX + "static"]
    pairs[cid] = args["_kb"].force_rows(
        args["force"],
        views[COLUMN_PREFIX + "position"],
        views[COLUMN_PREFIX + "diameter"],
        views["csr:indptr"],
        views["csr:indices"],
        active, net, nz, lo, hi,
    )


def k_displace(views, cid, lo, hi, args):
    """Clamped Euler displacement for rows [lo, hi) (row-elementwise)."""
    args["_kb"].displace_rows(
        views[COLUMN_PREFIX + "position"],
        views[COLUMN_PREFIX + "moved"],
        views["mech:net_force"],
        args["dt"],
        args["max_displacement"],
        lo, hi,
    )


def k_agent_op(views, cid, lo, hi, args):
    """Run a vectorizable AgentOperation's kernel on rows [lo, hi)."""
    columns = {
        name[len(COLUMN_PREFIX):]: arr
        for name, arr in views.items()
        if name.startswith(COLUMN_PREFIX)
    }
    args["op"].kernel(columns, lo, hi)


KERNELS = {
    "mech_force": k_force,
    "mech_displace": k_displace,
    "agent_op": k_agent_op,
}


def worker_main(worker_id, inbox, ack, queues):
    """Worker loop: wait for a phase, drain/steal chunks, acknowledge.

    When the phase message carries ``trace=True``, the worker records
    local trace-event tuples ``(ph, name, cat, ts_ns, dur_ns, args)`` —
    one span per phase plus one instant per steal — and returns them in
    the acknowledgment; the host adopts them onto this worker's trace
    thread (``perf_counter_ns`` is CLOCK_MONOTONIC on Linux, so the
    timestamps share the host tracer's timebase)."""
    arena = WorkerArena()
    queues.attach()
    while True:
        msg = inbox.get()
        if msg[0] == "stop":
            break
        _, gen, layout, shapes, kernel, args, trace = msg
        done = same_steals = cross_steals = 0
        error = None
        events = [] if trace else None
        kb = None
        try:
            if kernel in ("mech_force", "mech_displace"):
                # Worker-side dispatch table: resolved once per process
                # from the parent's already-resolved backend name and
                # cached at module level (one JIT compile per worker).
                kb = worker_kernels(args.get("kernel_backend", "numpy"))
                args["_kb"] = kb
                kb_calls_before = kb.calls
            arena.sync(layout)
            # A spec is (shape, dtype) for a whole block, or (shape,
            # dtype, block, offset) for a column region inside a
            # consolidated SoA block (Param.soa_arena): one mmap serves
            # every agent column.
            views = {
                name: (arena.view(name, spec[0], spec[1])
                       if len(spec) == 2
                       else arena.view(spec[2], spec[0], spec[1],
                                       offset=spec[3]))
                for name, spec in shapes.items()
            }
            chunks = views["mech:chunks"]
            fn = KERNELS[kernel]
            t_phase = time.perf_counter_ns() if trace else 0
            while True:
                got = queues.take(worker_id)
                if got is None:
                    break
                cid, level = got
                fn(views, cid, int(chunks[cid, 0]), int(chunks[cid, 1]), args)
                done += 1
                if level == 1:
                    same_steals += 1
                    if trace:
                        events.append(("i", "steal_same_domain", "steal",
                                       time.perf_counter_ns(), 0,
                                       {"chunk": cid}))
                elif level == 2:
                    cross_steals += 1
                    if trace:
                        events.append(("i", "steal_cross_domain", "steal",
                                       time.perf_counter_ns(), 0,
                                       {"chunk": cid}))
            if trace:
                end = time.perf_counter_ns()
                events.append(("X", kernel, "worker", t_phase,
                               end - t_phase, {"chunks": done}))
        except BaseException:
            error = traceback.format_exc()
        # Drop view references so the next sync() can close replaced blocks.
        views = chunks = None
        # (backend name, kernel calls this phase) — lets the host assert
        # workers resolved the same backend as the parent and keep the
        # kernel:worker_calls counter honest (anti-vacuous equivalence).
        kinfo = ((kb.name, kb.calls - kb_calls_before)
                 if kb is not None else None)
        ack.put((worker_id, gen, done, same_steals, cross_steals, error,
                 events, kinfo))
    arena.close()


# --------------------------------------------------------------------- #
# Host side
# --------------------------------------------------------------------- #

class ProcessBackend(ExecutionBackend):
    """Host orchestrator of the shared-memory worker pool."""

    name = "process"

    def __init__(self, sim):
        from repro.parallel.shm import SharedMemoryResourceManager

        if not isinstance(sim.rm, SharedMemoryResourceManager):
            raise TypeError(
                "process backend requires shared-memory columns; construct "
                "the Simulation with execution_backend='process' so it "
                "builds a SharedMemoryResourceManager"
            )
        p = sim.param
        self.sim = sim
        self.num_workers = int(p.backend_workers) or (os.cpu_count() or 1)
        self.chunk_size = int(p.backend_chunk_size)
        self.num_domains = sim.rm.num_domains
        #: Worker w serves simulated NUMA domain w % D — one worker group
        #: per domain, mirroring Machine.thread_domains.
        self.worker_domains = [w % self.num_domains
                               for w in range(self.num_workers)]
        # fork shares the parent's module state (fast start, no re-import);
        # spawn is the portable fallback.
        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._ctx = mp.get_context(method)
        self._procs = []
        self._inboxes = []
        self._ack = None
        self._queues = None
        self._gen = 0
        self._started = False
        self._dead = False
        #: (id(indptr), id(indices), arena.layout_version) of the CSR copy
        #: currently in the arena; lets repeat steps over an unchanged CSR
        #: skip the copy.  The strong refs keep the ids stable.
        self._csr_state = None
        self._csr_refs = None
        reg = sim.obs.registry
        self._phases = reg.counter("backend:phases")
        self._chunks = reg.counter("backend:chunks")
        self._csr_copies = reg.counter("backend:csr_copies")
        self._steals_same = reg.counter("backend:steals_same_domain")
        self._steals_cross = reg.counter("backend:steals_cross_domain")
        self._worker_kernel_calls = reg.counter("kernel:worker_calls")
        #: Kernel backend name each worker reported in its last mechanics
        #: acknowledgment ({worker_id: name}); the regression tests assert
        #: this matches the parent's resolved ``sim.kernels.name``.
        self.worker_kernel_backends: dict[int, str] = {}

    @property
    def phase_stats(self) -> dict:
        """Pool tallies, as a dict (registry-backed view over the
        ``backend:*`` counters in ``sim.obs``)."""
        return {
            "phases": int(self._phases.value),
            "chunks": int(self._chunks.value),
            "steals_same_domain": int(self._steals_same.value),
            "steals_cross_domain": int(self._steals_cross.value),
        }

    # -- pool lifecycle ------------------------------------------------- #

    def _start(self) -> None:
        if mp.current_process().daemon:
            # Daemonic processes (serve-pool workers, this backend's own
            # workers) may not have children; mp.Process.start() would raise
            # an opaque AssertionError deep in _bootstrap.  Fail with an
            # actionable message instead — sessions hosted inside a worker
            # must run execution_backend='serial'.
            raise BackendError(
                "process backend cannot start inside a daemonic process "
                "(e.g. a serve-pool worker); use execution_backend='serial'"
            )
        ctx = self._ctx
        self._queues = StealQueues(ctx, self.worker_domains)
        self._ack = ctx.Queue()
        for w in range(self.num_workers):
            inbox = ctx.SimpleQueue()
            proc = ctx.Process(
                target=worker_main,
                args=(w, inbox, self._ack, self._queues),
                daemon=True,
                name=f"repro-shm-worker-{w}",
            )
            proc.start()
            self._inboxes.append(inbox)
            self._procs.append(proc)
        self._started = True

    def shutdown(self) -> None:
        if self._started:
            for inbox in self._inboxes:
                try:
                    inbox.put(("stop",))
                except (OSError, ValueError):
                    pass
            for proc in self._procs:
                proc.join(timeout=5)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=1)
            self._procs = []
            self._inboxes = []
            self._started = False
        if self._queues is not None:
            self._queues.destroy()
            self._queues = None
        if self._ack is not None:
            self._ack.close()
            self._ack = None

    def stats(self) -> dict:
        return self.phase_stats

    # -- partitioning --------------------------------------------------- #

    def _partition(self) -> np.ndarray:
        """Domain-major ``(C, 3)`` chunk table of (lo, hi, domain) rows."""
        rm = self.sim.rm
        rows = []
        for d in range(rm.num_domains):
            lo = int(rm.domain_starts[d])
            hi = int(rm.domain_starts[d + 1])
            seg = hi - lo
            if seg == 0:
                continue
            workers_here = max(1, self.worker_domains.count(d))
            # Respect queue capacity even for enormous populations.
            step = max(
                self.chunk_size,
                -(-seg // (workers_here * (self._queue_capacity() - 1))),
            )
            for s in range(lo, hi, step):
                rows.append((s, min(s + step, hi), d))
        return np.asarray(rows, dtype=np.int64).reshape(-1, 3)

    def _queue_capacity(self) -> int:
        from repro.parallel.steal import DEFAULT_CAPACITY

        return (self._queues.capacity if self._queues is not None
                else DEFAULT_CAPACITY)

    def _distribute(self, chunks: np.ndarray) -> list[list[int]]:
        """Round-robin each domain's chunks over that domain's workers."""
        per_worker: list[list[int]] = [[] for _ in range(self.num_workers)]
        domains = np.asarray(self.worker_domains)
        for d in np.unique(chunks[:, 2]):
            workers = np.flatnonzero(domains == d)
            if len(workers) == 0:
                workers = np.arange(self.num_workers)
            for j, cid in enumerate(np.flatnonzero(chunks[:, 2] == d)):
                per_worker[workers[j % len(workers)]].append(int(cid))
        return per_worker

    # -- phase execution ------------------------------------------------ #

    def _column_shapes(self) -> dict:
        rm = self.sim.rm
        soa = rm.soa
        if soa is not None:
            # Single-arena mode: every column is a region of one block.
            from repro.parallel.shm import SOA_BLOCK

            return {
                COLUMN_PREFIX + name: (
                    arr.shape, arr.dtype.str, SOA_BLOCK,
                    int(soa.offsets[name]),
                )
                for name, arr in rm.data.items()
            }
        return {
            COLUMN_PREFIX + name: (arr.shape, arr.dtype.str)
            for name, arr in rm.data.items()
        }

    def _run_phase(self, kernel, args, shapes, num_chunks, per_worker) -> None:
        if self._dead:
            raise BackendError("process backend is dead after an earlier "
                               "failure; rebuild the simulation")
        if not self._started:
            self._start()
        self._gen += 1
        self._queues.fill(per_worker)
        tracer = self.sim.obs.tracer
        trace = tracer.enabled
        message = ("phase", self._gen, self.sim.rm.arena.layout(), shapes,
                   kernel, args, trace)
        with tracer.span(f"phase:{kernel}", cat="backend", chunks=num_chunks):
            for inbox in self._inboxes:
                inbox.put(message)
            done = 0
            errors = []
            for _ in range(self.num_workers):
                try:
                    (wid, gen, d, same, cross, error, events,
                     kinfo) = self._ack.get(timeout=ACK_TIMEOUT_S)
                except queue_mod.Empty:
                    self._dead = True
                    self.shutdown()
                    raise BackendError(
                        "worker did not acknowledge the phase (crashed or hung)"
                    ) from None
                if gen != self._gen:
                    self._dead = True
                    self.shutdown()
                    raise BackendError(
                        f"pool out of sync: expected phase {self._gen}, got {gen}"
                    )
                done += d
                self._steals_same.inc(same)
                self._steals_cross.inc(cross)
                if kinfo is not None:
                    self.worker_kernel_backends[wid] = kinfo[0]
                    self._worker_kernel_calls.inc(kinfo[1])
                if events:
                    # Worker trace events ride the existing ack channel;
                    # adopt them onto this worker's trace thread.
                    tracer.ingest(events, tid=wid + 1)
                if error is not None:
                    errors.append(f"worker {wid}:\n{error}")
        if errors:
            self._dead = True
            self.shutdown()
            raise BackendError("kernel failed in worker(s):\n"
                               + "\n".join(errors))
        if done != num_chunks:
            self._dead = True
            self.shutdown()
            raise BackendError(
                f"phase executed {done} of {num_chunks} chunks"
            )
        self._phases.inc()
        self._chunks.inc(num_chunks)

    # -- stage entry points --------------------------------------------- #

    def force_and_displace(self, sim, indptr, indices, detect):
        rm = sim.rm
        p = sim.param
        n = rm.n
        if n == 0 or len(indices) == 0:
            # Same early-out (and same result arrays) as the serial path.
            return ForceResult(np.zeros((n, 3)), np.zeros(n, np.int64), 0)
        arena = rm.arena

        ip = arena.ensure("csr:indptr", indptr.shape, np.int64)
        ix = arena.ensure("csr:indices", indices.shape, np.int64)
        net = arena.ensure("mech:net_force", (n, 3), np.float64)
        nz = arena.ensure("mech:nonzero", (n,), np.int64)
        chunks = self._partition()
        ch = arena.ensure("mech:chunks", chunks.shape, np.int64)
        ch[...] = chunks
        pair_counts = arena.ensure("mech:chunk_pairs", (len(chunks),),
                                   np.int64)
        # Copy the CSR unless this exact CSR already sits in the arena
        # (repeat steps with a skipped environment rebuild, see the
        # scheduler) and no block was replaced since.  Under the
        # displacement-bounded neighbor cache, re-filtered steps hand over
        # *fresh* exact-CSR arrays every iteration — those must (and do)
        # recopy, since the ids differ; only full-skip steps reuse the
        # arena copy.  The refilter itself runs in the parent: workers
        # always receive the exact CSR, bitwise identical to a fresh
        # build, so the kernel needs no cache awareness.
        state = (id(indptr), id(indices), arena.layout_version)
        if self._csr_state != state:
            ip[...] = indptr
            ix[...] = indices
            self._csr_refs = (indptr, indices)
            self._csr_state = (id(indptr), id(indices), arena.layout_version)
            self._csr_copies.inc()

        shapes = self._column_shapes()
        shapes.update({
            "csr:indptr": (indptr.shape, np.dtype(np.int64).str),
            "csr:indices": (indices.shape, np.dtype(np.int64).str),
            "mech:net_force": ((n, 3), np.dtype(np.float64).str),
            "mech:nonzero": ((n,), np.dtype(np.int64).str),
            "mech:chunks": (chunks.shape, np.dtype(np.int64).str),
            "mech:chunk_pairs": ((len(chunks),), np.dtype(np.int64).str),
        })
        per_worker = self._distribute(chunks)
        kb_name = sim.kernels.name
        self._run_phase(
            "mech_force",
            {"detect": detect, "force": sim.force,
             "kernel_backend": kb_name},
            shapes, len(chunks), per_worker,
        )
        self._run_phase(
            "mech_displace",
            {"dt": p.simulation_time_step,
             "max_displacement": p.simulation_max_displacement,
             "kernel_backend": kb_name},
            shapes, len(chunks), per_worker,
        )
        # Fixed chunk order: sum of int64 pair counts is order-insensitive,
        # but keep the canonical order anyway for auditability.
        return ForceResult(net, nz, int(pair_counts.sum()))

    def run_agent_operation(self, sim, op) -> None:
        if not getattr(op, "vectorizable", False) or sim.rm.n == 0:
            op.run(sim)
            return
        arena = sim.rm.arena
        chunks = self._partition()
        ch = arena.ensure("mech:chunks", chunks.shape, np.int64)
        ch[...] = chunks
        shapes = self._column_shapes()
        shapes["mech:chunks"] = (chunks.shape, np.dtype(np.int64).str)
        per_worker = self._distribute(chunks)
        self._run_phase("agent_op", {"op": op}, shapes, len(chunks),
                        per_worker)
