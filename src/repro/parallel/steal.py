"""Process-shared work queues with two-level stealing (§4.1, Fig. 2).

The real-parallelism counterpart of :meth:`repro.parallel.machine.Machine.
_schedule_stealing`: each worker owns a fixed-capacity deque of chunk ids
living in one shared-memory block; owners pop from the *front*, thieves
steal from the *back* of the victim with the most remaining work — first
a victim inside the thief's own NUMA domain, then any domain (the paper's
Fig. 2 steps 4–5).

Layout of the single block (all int64):

- ``bounds``: ``(W, 2)`` — per-queue ``head, tail`` (half-open);
- ``slots``:  ``(W, capacity)`` — the chunk ids.

One ``multiprocessing.Lock`` per queue serializes pop/steal on that
queue; victim *selection* reads bounds racily and revalidates under the
victim's lock, retrying while any candidate still shows work.  Races only
ever shrink queues, so the retry loop terminates.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

from repro.parallel.shm import attach_block

__all__ = ["StealQueues"]

#: Per-worker queue capacity (chunk ids).  The backend sizes chunks so the
#: per-worker count stays far below this; `fill` enforces it.
DEFAULT_CAPACITY = 8192


class StealQueues:
    """``W`` shared deques + per-queue locks, picklable into workers."""

    def __init__(self, ctx, worker_domains, capacity: int = DEFAULT_CAPACITY):
        self.num_workers = len(worker_domains)
        self.capacity = int(capacity)
        self.worker_domains = np.asarray(worker_domains, dtype=np.int64)
        nbytes = 8 * self.num_workers * (2 + self.capacity)
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self._shm_name = self._shm.name
        self._locks = [ctx.Lock() for _ in range(self.num_workers)]
        self._owner = True
        self._map_arrays()
        self.bounds[...] = 0

    def _map_arrays(self) -> None:
        self.bounds = np.ndarray((self.num_workers, 2), dtype=np.int64,
                                 buffer=self._shm.buf)
        self.slots = np.ndarray((self.num_workers, self.capacity),
                                dtype=np.int64, buffer=self._shm.buf,
                                offset=8 * 2 * self.num_workers)

    # -- pickling into workers (fork passes the object through Process args;
    # -- spawn pickles it, so the mapping must be re-established there). ----
    def __getstate__(self):
        state = dict(self.__dict__)
        state["_shm"] = None
        state["bounds"] = None
        state["slots"] = None
        state["_owner"] = False
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    def attach(self) -> None:
        """Worker-side: map the shared block (idempotent)."""
        if self._shm is None:
            self._shm = attach_block(self._shm_name)
            self._map_arrays()

    # ------------------------------------------------------------------ #
    # Host side
    # ------------------------------------------------------------------ #

    def fill(self, per_worker: list[list[int]]) -> None:
        """Load each worker's queue; only valid while all workers are idle."""
        if len(per_worker) != self.num_workers:
            raise ValueError("need one chunk list per worker")
        for w, items in enumerate(per_worker):
            if len(items) > self.capacity:
                raise ValueError(
                    f"{len(items)} chunks exceed queue capacity {self.capacity}"
                )
            with self._locks[w]:
                if items:
                    self.slots[w, : len(items)] = items
                self.bounds[w, 0] = 0
                self.bounds[w, 1] = len(items)

    def destroy(self) -> None:
        """Host-side teardown: drop the mapping and unlink the segment."""
        if self._shm is None:
            return
        self.bounds = None
        self.slots = None
        try:
            self._shm.close()
        except BufferError:
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
        self._shm = None

    # ------------------------------------------------------------------ #
    # Worker side
    # ------------------------------------------------------------------ #

    def _pop_front(self, w: int):
        with self._locks[w]:
            head, tail = int(self.bounds[w, 0]), int(self.bounds[w, 1])
            if head >= tail:
                return None
            self.bounds[w, 0] = head + 1
            return int(self.slots[w, head])

    def _steal_back(self, victim: int):
        with self._locks[victim]:
            head, tail = int(self.bounds[victim, 0]), int(self.bounds[victim, 1])
            if head >= tail:
                return None
            self.bounds[victim, 1] = tail - 1
            return int(self.slots[victim, tail - 1])

    def take(self, w: int):
        """Next chunk for worker ``w``: ``(chunk_id, level)`` or ``None``.

        ``level`` is 0 for own-queue work, 1 for a same-domain steal, 2 for
        a cross-domain steal (mirrors ``RegionStats`` accounting).
        """
        item = self._pop_front(w)
        if item is not None:
            return item, 0
        own_domain = self.worker_domains[w]
        groups = (
            (1, np.flatnonzero((self.worker_domains == own_domain)
                               & (np.arange(self.num_workers) != w))),
            (2, np.flatnonzero(self.worker_domains != own_domain)),
        )
        for level, victims in groups:
            while len(victims):
                remaining = (self.bounds[victims, 1]
                             - self.bounds[victims, 0])
                best = int(np.argmax(remaining))
                if remaining[best] <= 0:
                    break
                item = self._steal_back(int(victims[best]))
                if item is not None:
                    return item, level
                # Lost the race on that victim; re-rank and retry.
        return None
