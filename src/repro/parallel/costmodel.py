"""Memory cost model for the simulated machine.

ABM workloads are memory-bound (paper §1, Challenge 2; Fig. 5 right): agents
access their own payload and the payloads of spatial neighbors, and the cost
of those accesses is governed by *where the payloads sit in memory*.  The
optimizations under study (agent sorting §4.2, the pool allocator §4.3,
NUMA-aware iteration §4.1) all work by changing that placement.  The model
must therefore respond to addresses, not to opaque constants.

Two models are provided:

- :class:`CacheSim` — an exact set-associative LRU cache simulator.  Too
  slow for whole-simulation accounting, it serves as the reference that the
  fast model is validated against in the test suite.
- :class:`MemoryCostModel` — the fast, vectorized *address-distance* model.
  An access from a working location to address ``a`` is classified by the
  distance between ``a`` and the previously touched address of the same
  stream: within a cache line → L1 latency, within the L1 span → L1, within
  the L2 span → L2, within the L3 span → L3, otherwise DRAM.  Accesses whose
  target lives in a different NUMA domain than the executing thread pay the
  remote-DRAM premium on top (charged at schedule time, because the
  executing thread is only known then; see :class:`repro.parallel.machine.WorkBlock`).

The distance model is a standard locality proxy: after agents are sorted
along a space-filling curve, spatial neighbors sit at small address
distances, which is exactly the effect the paper's Fig. 12 measures.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.parallel.topology import MachineSpec

__all__ = ["MemoryCostModel", "CacheSim", "BackendCostModel",
           "BackendDecision"]


class MemoryCostModel:
    """Vectorized address-distance memory cost model."""

    #: Cycles charged per cache line of a hardware-prefetched sequential
    #: stream (prefetching hides most of the DRAM latency).
    STREAM_LINE_CYCLES = 8.0

    def __init__(self, spec: MachineSpec):
        self.spec = spec
        self._bounds = np.array(
            [spec.cache_line, spec.l1_span, spec.l2_span, spec.l3_span],
            dtype=np.float64,
        )
        self._latencies = np.array(
            [
                spec.l1_latency,
                spec.l1_latency,
                spec.l2_latency,
                spec.l3_latency,
                spec.dram_latency,
            ],
            dtype=np.float64,
        )

    def classify(self, deltas) -> np.ndarray:
        """Map absolute address distances to level indices 0..4 (L1..DRAM)."""
        deltas = np.abs(np.asarray(deltas, dtype=np.float64))
        return np.searchsorted(self._bounds, deltas, side="right")

    def latency_for_deltas(self, deltas) -> np.ndarray:
        """Per-access latency in cycles, assuming domain-local memory."""
        return self._latencies[self.classify(deltas)]

    def total_access_cycles(self, deltas) -> float:
        """Sum of local-domain latencies for a batch of accesses."""
        d = np.asarray(deltas)
        if d.size == 0:
            return 0.0
        return float(np.sum(self.latency_for_deltas(d)))

    @property
    def remote_premium(self) -> float:
        """Extra cycles for an access that crosses NUMA domains."""
        return self.spec.remote_dram_latency - self.spec.dram_latency

    def stream_cycles(self, nbytes: float) -> float:
        """Cost of streaming ``nbytes`` sequentially (prefetch-friendly)."""
        return (float(nbytes) / self.spec.cache_line) * self.STREAM_LINE_CYCLES

    def compute_cycles(self, nops):
        """Cost of ``nops`` arithmetic operations on one core.

        Accepts scalars or arrays (per-item op counts).
        """
        return nops / self.spec.issue_width


class CacheSim:
    """Exact set-associative LRU cache (reference model for tests).

    Parameters
    ----------
    size:
        Capacity in bytes.
    assoc:
        Associativity (ways per set).
    line:
        Cache line size in bytes.
    """

    def __init__(self, size: int, assoc: int = 8, line: int = 64):
        if size % (assoc * line) != 0:
            raise ValueError("size must be a multiple of assoc * line")
        self.line = line
        self.assoc = assoc
        self.num_sets = size // (assoc * line)
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Touch ``addr``; return ``True`` on hit, ``False`` on miss."""
        tag = addr // self.line
        s = self._sets[tag % self.num_sets]
        if tag in s:
            s.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        s[tag] = True
        if len(s) > self.assoc:
            s.popitem(last=False)
        return False

    def access_many(self, addrs) -> int:
        """Touch a sequence of addresses; return the number of misses."""
        before = self.misses
        for a in np.asarray(addrs, dtype=np.int64):
            self.access(int(a))
        return self.misses - before

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (cache contents are kept)."""
        self.hits = 0
        self.misses = 0


# --------------------------------------------------------------------- #
# Execution-backend cost model (Param.execution_backend = "auto")
# --------------------------------------------------------------------- #

@dataclass
class BackendDecision:
    """One auto-mode backend choice and the estimates that produced it."""

    backend: str                 #: "serial", "process", or "distributed"
    num_agents: int
    serial_seconds: float        #: estimated serial mechanics seconds/step
    process_seconds: float       #: estimated process mechanics seconds/step
    reason: str
    #: Estimated distributed (halo-exchange) seconds/step; ``None`` when
    #: the distributed backend was not a candidate (``shards == 0``).
    distributed_seconds: float | None = None

    def as_dict(self) -> dict:
        """JSON-serializable form (bench artifacts, backend stats)."""
        out = {
            "backend": self.backend,
            "num_agents": self.num_agents,
            "serial_seconds": self.serial_seconds,
            "process_seconds": self.process_seconds,
            "reason": self.reason,
        }
        if self.distributed_seconds is not None:
            out["distributed_seconds"] = self.distributed_seconds
        return out


class BackendCostModel:
    """Measured cost model deciding serial / process / distributed
    execution per run.

    BENCH_scaling.json shows the process pool *losing* to serial at small
    populations (``process_overhead_ratio`` > 1): per-step orchestration
    — phase messages, shm scratch fills, CSR copies, arena attach — is a
    fixed tax that only amortizes once the parallelizable work is large.
    This model turns that measurement into a runtime decision:

    - the **serial** estimate is an EMA of measured per-agent mechanics
      seconds (observed whenever the serial side runs);
    - the **process** estimate is ``serial / workers + overhead``, where
      ``overhead`` starts at an optimistic prior and is corrected by
      measurement as soon as the process side actually runs (plus a churn
      term: population churn forces commit-path copies whose host-side
      cost the pool cannot parallelize);
    - populations smaller than one backend chunk
      (``Param.backend_chunk_size``) are **always serial** — there is
      nothing to parallelize over, and the seed artifact showed exactly
      this regime losing;
    - switching requires beating the incumbent by ``HYSTERESIS`` (10%),
      so noisy measurements cannot make the backend flap.

    :class:`repro.parallel.backend.AutoBackend` feeds it timings and asks
    for a :class:`BackendDecision` at every environment-rebuild boundary.
    """

    #: EMA smoothing for measured timings.
    EMA_ALPHA = 0.3
    #: Optimistic per-step process-overhead prior (seconds); corrected by
    #: the first real process measurement.
    OVERHEAD_PRIOR_S = 3e-3
    #: Fractional advantage required to switch away from the incumbent.
    HYSTERESIS = 0.10
    #: Extra process cost per unit churn rate, as a fraction of the
    #: serial estimate (commit copies are host-side and serialized).
    CHURN_PENALTY = 0.25
    #: Optimistic per-step halo-exchange overhead prior (seconds):
    #: replica sync + two ack barriers over a local transport.  Larger
    #: than the process pool's shm-attach prior — the distributed path
    #: moves payload copies through a transport instead of attaching a
    #: shared block — and corrected by measurement once the shards run.
    DIST_OVERHEAD_PRIOR_S = 5e-3
    #: Extra distributed cost per unit churn rate, as a fraction of the
    #: serial estimate.  Structure churn is worse for shards than for
    #: the pool: every rebuild invalidates the per-shard delta baselines
    #: and forces full membership resyncs.
    DIST_CHURN_PENALTY = 0.5

    def __init__(self, workers: int, min_agents: int = 4096,
                 shards: int = 0):
        self.workers = max(1, int(workers))
        #: Populations below this never use the pool (one chunk or less).
        self.min_agents = int(min_agents)
        #: Shard count the distributed candidate would run with; 0 keeps
        #: the distributed backend out of the candidate set entirely.
        self.shards = max(0, int(shards))
        #: EMA of measured serial seconds per agent-step (None = unmeasured).
        self.serial_per_agent: float | None = None
        #: EMA of measured process overhead seconds per step.
        self.overhead_seconds = self.OVERHEAD_PRIOR_S
        #: EMA of measured distributed (halo-exchange) overhead per step.
        self.dist_overhead_seconds = self.DIST_OVERHEAD_PRIOR_S
        self.serial_samples = 0
        self.process_samples = 0
        self.distributed_samples = 0

    # -- measurement ---------------------------------------------------- #

    def observe_serial(self, num_agents: int, seconds: float) -> None:
        """Feed one measured serial mechanics step."""
        if num_agents <= 0 or seconds <= 0:
            return
        per_agent = seconds / num_agents
        if self.serial_per_agent is None:
            self.serial_per_agent = per_agent
        else:
            a = self.EMA_ALPHA
            self.serial_per_agent = (1 - a) * self.serial_per_agent + a * per_agent
        self.serial_samples += 1

    def observe_process(self, num_agents: int, seconds: float) -> None:
        """Feed one measured process mechanics step; isolates overhead."""
        if num_agents <= 0 or seconds <= 0:
            return
        parallel_part = self.serial_estimate(num_agents) / self.workers
        overhead = max(0.0, seconds - parallel_part)
        a = self.EMA_ALPHA
        self.overhead_seconds = (1 - a) * self.overhead_seconds + a * overhead
        self.process_samples += 1

    def observe_distributed(self, num_agents: int, seconds: float) -> None:
        """Feed one measured distributed mechanics step; isolates the
        halo-exchange overhead (sync encode + transport + barriers)."""
        if num_agents <= 0 or seconds <= 0:
            return
        shards = max(1, self.shards)
        parallel_part = self.serial_estimate(num_agents) / shards
        overhead = max(0.0, seconds - parallel_part)
        a = self.EMA_ALPHA
        self.dist_overhead_seconds = (
            (1 - a) * self.dist_overhead_seconds + a * overhead
        )
        self.distributed_samples += 1

    # -- estimates ------------------------------------------------------ #

    def serial_estimate(self, num_agents: int) -> float:
        """Estimated serial mechanics seconds for one step."""
        if self.serial_per_agent is None:
            return 0.0
        return self.serial_per_agent * max(0, num_agents)

    def process_estimate(self, num_agents: int, churn_rate: float = 0.0) -> float:
        """Estimated process-pool mechanics seconds for one step."""
        serial = self.serial_estimate(num_agents)
        return (serial / self.workers + self.overhead_seconds
                + self.CHURN_PENALTY * churn_rate * serial)

    def distributed_estimate(self, num_agents: int,
                             churn_rate: float = 0.0) -> float:
        """Estimated halo-exchange mechanics seconds for one step.

        Compute scales with the per-shard owned population; the exchange
        tax (delta sync, transport copies, two ack barriers) is the
        measured/prior overhead, and churn is penalized harder than for
        the process pool because structural changes force full resyncs.
        """
        serial = self.serial_estimate(num_agents)
        shards = max(1, self.shards)
        return (serial / shards + self.dist_overhead_seconds
                + self.DIST_CHURN_PENALTY * churn_rate * serial)

    def process_overhead_ratio(self, num_agents: int) -> float:
        """Estimated process/serial wall ratio (the bench-scaling metric);
        0.0 while serial is still unmeasured."""
        serial = self.serial_estimate(num_agents)
        if serial <= 0:
            return 0.0
        return self.process_estimate(num_agents) / serial

    # -- decision ------------------------------------------------------- #

    def decide(self, num_agents: int, current: str,
               churn_rate: float = 0.0) -> BackendDecision:
        """Pick the backend for the coming stretch of steps.

        The candidate set is serial vs process, plus distributed when
        shards are configured (``shards >= 2``); the cheapest challenger
        must beat the incumbent by ``HYSTERESIS`` to force a switch.
        """
        serial = self.serial_estimate(num_agents)
        process = self.process_estimate(num_agents, churn_rate)
        distributed = (
            self.distributed_estimate(num_agents, churn_rate)
            if self.shards >= 2 else None
        )
        if num_agents < self.min_agents:
            return BackendDecision(
                "serial", num_agents, serial, process,
                f"population {num_agents} below one chunk "
                f"({self.min_agents}); nothing to parallelize",
                distributed_seconds=distributed,
            )
        if self.serial_per_agent is None:
            return BackendDecision(
                "serial", num_agents, serial, process,
                "serial cost unmeasured; measure before paying pool startup",
                distributed_seconds=distributed,
            )
        estimates = {"serial": serial, "process": process}
        if distributed is not None:
            estimates["distributed"] = distributed
        incumbent = current if current in estimates else "serial"
        challenger = min(
            (name for name in estimates if name != incumbent),
            key=lambda name: estimates[name],
        )
        if estimates[challenger] < (1 - self.HYSTERESIS) * estimates[incumbent]:
            gain = 1 - estimates[challenger] / max(estimates[incumbent], 1e-12)
            return BackendDecision(
                challenger, num_agents, serial, process,
                f"{challenger} estimated {gain:.0%} faster than {incumbent}",
                distributed_seconds=distributed,
            )
        return BackendDecision(
            incumbent, num_agents, serial, process,
            f"keeping {incumbent} (challenger within hysteresis)",
            distributed_seconds=distributed,
        )
