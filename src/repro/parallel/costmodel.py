"""Memory cost model for the simulated machine.

ABM workloads are memory-bound (paper §1, Challenge 2; Fig. 5 right): agents
access their own payload and the payloads of spatial neighbors, and the cost
of those accesses is governed by *where the payloads sit in memory*.  The
optimizations under study (agent sorting §4.2, the pool allocator §4.3,
NUMA-aware iteration §4.1) all work by changing that placement.  The model
must therefore respond to addresses, not to opaque constants.

Two models are provided:

- :class:`CacheSim` — an exact set-associative LRU cache simulator.  Too
  slow for whole-simulation accounting, it serves as the reference that the
  fast model is validated against in the test suite.
- :class:`MemoryCostModel` — the fast, vectorized *address-distance* model.
  An access from a working location to address ``a`` is classified by the
  distance between ``a`` and the previously touched address of the same
  stream: within a cache line → L1 latency, within the L1 span → L1, within
  the L2 span → L2, within the L3 span → L3, otherwise DRAM.  Accesses whose
  target lives in a different NUMA domain than the executing thread pay the
  remote-DRAM premium on top (charged at schedule time, because the
  executing thread is only known then; see :class:`repro.parallel.machine.WorkBlock`).

The distance model is a standard locality proxy: after agents are sorted
along a space-filling curve, spatial neighbors sit at small address
distances, which is exactly the effect the paper's Fig. 12 measures.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.parallel.topology import MachineSpec

__all__ = ["MemoryCostModel", "CacheSim"]


class MemoryCostModel:
    """Vectorized address-distance memory cost model."""

    #: Cycles charged per cache line of a hardware-prefetched sequential
    #: stream (prefetching hides most of the DRAM latency).
    STREAM_LINE_CYCLES = 8.0

    def __init__(self, spec: MachineSpec):
        self.spec = spec
        self._bounds = np.array(
            [spec.cache_line, spec.l1_span, spec.l2_span, spec.l3_span],
            dtype=np.float64,
        )
        self._latencies = np.array(
            [
                spec.l1_latency,
                spec.l1_latency,
                spec.l2_latency,
                spec.l3_latency,
                spec.dram_latency,
            ],
            dtype=np.float64,
        )

    def classify(self, deltas) -> np.ndarray:
        """Map absolute address distances to level indices 0..4 (L1..DRAM)."""
        deltas = np.abs(np.asarray(deltas, dtype=np.float64))
        return np.searchsorted(self._bounds, deltas, side="right")

    def latency_for_deltas(self, deltas) -> np.ndarray:
        """Per-access latency in cycles, assuming domain-local memory."""
        return self._latencies[self.classify(deltas)]

    def total_access_cycles(self, deltas) -> float:
        """Sum of local-domain latencies for a batch of accesses."""
        d = np.asarray(deltas)
        if d.size == 0:
            return 0.0
        return float(np.sum(self.latency_for_deltas(d)))

    @property
    def remote_premium(self) -> float:
        """Extra cycles for an access that crosses NUMA domains."""
        return self.spec.remote_dram_latency - self.spec.dram_latency

    def stream_cycles(self, nbytes: float) -> float:
        """Cost of streaming ``nbytes`` sequentially (prefetch-friendly)."""
        return (float(nbytes) / self.spec.cache_line) * self.STREAM_LINE_CYCLES

    def compute_cycles(self, nops):
        """Cost of ``nops`` arithmetic operations on one core.

        Accepts scalars or arrays (per-item op counts).
        """
        return nops / self.spec.issue_width


class CacheSim:
    """Exact set-associative LRU cache (reference model for tests).

    Parameters
    ----------
    size:
        Capacity in bytes.
    assoc:
        Associativity (ways per set).
    line:
        Cache line size in bytes.
    """

    def __init__(self, size: int, assoc: int = 8, line: int = 64):
        if size % (assoc * line) != 0:
            raise ValueError("size must be a multiple of assoc * line")
        self.line = line
        self.assoc = assoc
        self.num_sets = size // (assoc * line)
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Touch ``addr``; return ``True`` on hit, ``False`` on miss."""
        tag = addr // self.line
        s = self._sets[tag % self.num_sets]
        if tag in s:
            s.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        s[tag] = True
        if len(s) > self.assoc:
            s.popitem(last=False)
        return False

    def access_many(self, addrs) -> int:
        """Touch a sequence of addresses; return the number of misses."""
        before = self.misses
        for a in np.asarray(addrs, dtype=np.int64):
            self.access(int(a))
        return self.misses - before

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (cache contents are kept)."""
        self.hits = 0
        self.misses = 0
