"""Virtual machine: threads, parallel regions, two-level work stealing.

The :class:`Machine` replaces the paper's OpenMP runtime on real NUMA
hardware.  It keeps a virtual clock in core cycles.  Code under measurement
submits *regions*:

- ``run_serial(name, cycles)`` — a serial section; one thread advances the
  clock (this is what makes the standard implementation's kd-tree build
  poison its strong scaling, Fig. 10).
- ``run_parallel(name, blocks, policy)`` — an OpenMP-style ``parallel for``
  over :class:`WorkBlock` items.  The region's elapsed time is the makespan
  of an online greedy schedule:

  * ``STATIC`` — blocks are chunked contiguously over all threads, no
    stealing (plain ``#pragma omp for schedule(static)``).
  * ``DYNAMIC`` — idle threads pull from any queue, ignoring NUMA placement.
  * ``NUMA_AWARE`` — the paper's mechanism (§4.1, Fig. 2): blocks start on
    the threads of the NUMA domain that owns their data; an idle thread
    first steals inside its own domain, and only crosses domains when its
    domain has no work left.

Each block may carry per-domain access counts; when a block executes on a
thread of domain *e*, every access to a different domain pays the
remote-DRAM premium.  This is how NUMA-aware iteration and agent balancing
show up as measured time differences.

SMT is modeled by giving hyperthread slots a reduced speed
(``spec.smt_efficiency``), which produces the paper's hyperthreading
plateau in Fig. 10.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.parallel.costmodel import MemoryCostModel
from repro.parallel.topology import MachineSpec

__all__ = ["SchedulePolicy", "WorkBlock", "Machine", "make_blocks"]

#: Synchronization cost charged per successful steal, in cycles.
STEAL_OVERHEAD_CYCLES = 400.0

#: Barrier/fork-join overhead charged per parallel region, in cycles:
#: a base cost plus a tree-barrier term logarithmic in the thread count.
REGION_OVERHEAD_BASE = 600.0
REGION_OVERHEAD_LOG = 150.0


def region_overhead_cycles(num_threads: int) -> float:
    """Fork-join/barrier overhead of one parallel region."""
    return REGION_OVERHEAD_BASE + REGION_OVERHEAD_LOG * float(
        np.log2(max(num_threads, 1)) if num_threads > 1 else 0.0
    )


class SchedulePolicy(Enum):
    STATIC = "static"
    DYNAMIC = "dynamic"
    NUMA_AWARE = "numa_aware"


@dataclass
class WorkBlock:
    """A chunk of parallel work (a block of agents, boxes, ...).

    Attributes
    ----------
    cycles:
        Total cost in cycles assuming all memory accesses are domain-local.
    memory_cycles:
        The part of ``cycles`` that is memory stalls (pipeline-slot
        accounting for Fig. 5 right).
    preferred_domain:
        NUMA domain owning the block's data.
    domain_accesses:
        Optional per-domain memory access counts; accesses to domains other
        than the executing thread's pay the remote premium.
    """

    cycles: float
    memory_cycles: float = 0.0
    preferred_domain: int = 0
    domain_accesses: np.ndarray | None = None


@dataclass
class RegionStats:
    """Accumulated accounting for one named region type."""

    cycles: float = 0.0
    invocations: int = 0
    compute_cycles: float = 0.0
    memory_cycles: float = 0.0
    steals_same_domain: int = 0
    steals_cross_domain: int = 0


class Machine:
    """A simulated NUMA server executing serial and parallel regions."""

    def __init__(
        self,
        spec: MachineSpec,
        num_threads: int | None = None,
        num_domains: int | None = None,
    ):
        self.spec = spec
        self.num_domains = num_domains if num_domains is not None else spec.numa_domains
        if not 1 <= self.num_domains <= spec.numa_domains:
            raise ValueError("num_domains out of range for this machine spec")
        physical = self.num_domains * spec.cores_per_domain
        max_threads = physical * spec.threads_per_core
        self.num_threads = num_threads if num_threads is not None else max_threads
        if not 1 <= self.num_threads <= max_threads:
            raise ValueError(
                f"num_threads must be in [1, {max_threads}] for "
                f"{self.num_domains} domain(s) of {spec.name}"
            )
        self.cost_model = MemoryCostModel(spec)

        # Thread t's NUMA domain and speed.  Physical core slots are filled
        # first (speed 1.0), scattered round-robin across active domains;
        # hyperthread slots follow at smt_efficiency.
        domains = np.empty(self.num_threads, dtype=np.int64)
        speeds = np.empty(self.num_threads, dtype=np.float64)
        for t in range(self.num_threads):
            slot = t if t < physical else t - physical
            domains[t] = slot % self.num_domains
            speeds[t] = 1.0 if t < physical else spec.smt_efficiency
        self.thread_domains = domains
        self.thread_speeds = speeds

        self.cycles = 0.0
        self.stats: dict[str, RegionStats] = {}
        self.total_compute_cycles = 0.0
        self.total_memory_cycles = 0.0

    # ------------------------------------------------------------------ #
    # Accounting helpers
    # ------------------------------------------------------------------ #

    def _stat(self, name: str) -> RegionStats:
        if name not in self.stats:
            self.stats[name] = RegionStats()
        return self.stats[name]

    @property
    def elapsed_seconds(self) -> float:
        return self.spec.cycles_to_seconds(self.cycles)

    def op_seconds(self, name: str) -> float:
        """Virtual seconds spent in region ``name`` (0 if never run)."""
        return self.spec.cycles_to_seconds(self.stats[name].cycles) if name in self.stats else 0.0

    @property
    def memory_bound_fraction(self) -> float:
        """Fraction of used pipeline slots stalled on memory (Fig. 5 right)."""
        total = self.total_compute_cycles + self.total_memory_cycles
        return self.total_memory_cycles / total if total else 0.0

    def reset(self) -> None:
        """Zero the clock and all region statistics."""
        self.cycles = 0.0
        self.stats = {}
        self.total_compute_cycles = 0.0
        self.total_memory_cycles = 0.0

    def threads_of_domain(self, domain: int) -> np.ndarray:
        """Thread ids pinned to NUMA ``domain``."""
        return np.flatnonzero(self.thread_domains == domain)

    # ------------------------------------------------------------------ #
    # Regions
    # ------------------------------------------------------------------ #

    def run_serial(self, name: str, cycles: float, memory_cycles: float = 0.0) -> float:
        """Execute a serial section on one thread; returns elapsed cycles."""
        elapsed = float(cycles)
        self.cycles += elapsed
        st = self._stat(name)
        st.cycles += elapsed
        st.invocations += 1
        st.compute_cycles += cycles - memory_cycles
        st.memory_cycles += memory_cycles
        self.total_compute_cycles += cycles - memory_cycles
        self.total_memory_cycles += memory_cycles
        return elapsed

    def run_parallel(
        self,
        name: str,
        blocks: list[WorkBlock],
        policy: SchedulePolicy = SchedulePolicy.NUMA_AWARE,
    ) -> float:
        """Execute a parallel-for region; returns its elapsed cycles."""
        st = self._stat(name)
        st.invocations += 1
        if not blocks:
            return 0.0
        if policy is SchedulePolicy.STATIC:
            elapsed, extra_mem, steals = self._schedule_static(blocks)
        else:
            elapsed, extra_mem, steals = self._schedule_stealing(blocks, policy)
        elapsed += region_overhead_cycles(self.num_threads)
        self.cycles += elapsed
        st.cycles += elapsed
        compute = sum(b.cycles - b.memory_cycles for b in blocks)
        memory = sum(b.memory_cycles for b in blocks) + extra_mem
        st.compute_cycles += compute
        st.memory_cycles += memory
        st.steals_same_domain += steals[0]
        st.steals_cross_domain += steals[1]
        self.total_compute_cycles += compute
        self.total_memory_cycles += memory
        return elapsed

    # ------------------------------------------------------------------ #
    # Schedulers
    # ------------------------------------------------------------------ #

    def _block_cost(self, block: WorkBlock, thread: int) -> tuple[float, float]:
        """(execution cycles on `thread`, extra remote-memory cycles)."""
        extra = 0.0
        if block.domain_accesses is not None and self.num_domains > 1:
            dom = self.thread_domains[thread]
            total = float(np.sum(block.domain_accesses))
            local = float(block.domain_accesses[dom]) if dom < len(block.domain_accesses) else 0.0
            extra = (total - local) * self.cost_model.remote_premium
        return (block.cycles + extra) / self.thread_speeds[thread], extra

    def _schedule_static(self, blocks):
        """Contiguous chunking over all threads, no stealing."""
        T = self.num_threads
        bounds = np.linspace(0, len(blocks), T + 1, dtype=np.int64)
        makespan = 0.0
        extra_mem = 0.0
        for t in range(T):
            tot = 0.0
            for i in range(bounds[t], bounds[t + 1]):
                c, extra = self._block_cost(blocks[i], t)
                tot += c
                extra_mem += extra
            makespan = max(makespan, tot)
        return makespan, extra_mem, (0, 0)

    def _schedule_stealing(self, blocks, policy: SchedulePolicy):
        """Online greedy schedule with (two-level) work stealing.

        Threads consume their own deque from the front; steals take from the
        back of the victim with the most remaining blocks — first within the
        thief's NUMA domain, then across domains (paper Fig. 2, steps 4-5).
        With ``DYNAMIC`` the domain preference is ignored (single level).
        """
        T = self.num_threads
        queues: list[deque] = [deque() for _ in range(T)]

        if policy is SchedulePolicy.NUMA_AWARE:
            # Group blocks by their data's domain, split among that domain's
            # threads.  Domains with no threads fall back to round-robin.
            by_domain: dict[int, list[int]] = {}
            for i, b in enumerate(blocks):
                by_domain.setdefault(b.preferred_domain % self.num_domains, []).append(i)
            for dom, idxs in by_domain.items():
                tids = self.threads_of_domain(dom)
                if len(tids) == 0:
                    tids = np.arange(T)
                for j, i in enumerate(idxs):
                    queues[tids[j % len(tids)]].append(i)
        else:
            for i in range(len(blocks)):
                queues[i % T].append(i)

        same_steals = 0
        cross_steals = 0
        extra_mem = 0.0
        makespan = 0.0
        # Event heap of (time_when_free, thread).
        heap = [(0.0, t) for t in range(T)]
        heapq.heapify(heap)
        remaining = len(blocks)
        while remaining:
            now, t = heapq.heappop(heap)
            steal_cost = 0.0
            if queues[t]:
                i = queues[t].popleft()
            else:
                victim = self._pick_victim(queues, t, same_domain=policy is SchedulePolicy.NUMA_AWARE)
                if victim is None:
                    continue  # nothing left to steal; thread retires
                vic, same = victim
                i = queues[vic].pop()
                steal_cost = STEAL_OVERHEAD_CYCLES
                if same:
                    same_steals += 1
                else:
                    cross_steals += 1
            cost, extra = self._block_cost(blocks[i], t)
            extra_mem += extra
            finish = now + cost + steal_cost
            makespan = max(makespan, finish)
            remaining -= 1
            heapq.heappush(heap, (finish, t))
        return makespan, extra_mem, (same_steals, cross_steals)

    def _pick_victim(self, queues, thief: int, same_domain: bool):
        """Victim with the most remaining work; returns (victim, same_dom?)."""
        best = None
        best_len = 0
        if same_domain:
            for v in self.threads_of_domain(self.thread_domains[thief]):
                if v != thief and len(queues[v]) > best_len:
                    best, best_len = int(v), len(queues[v])
            if best is not None:
                return best, True
        for v in range(len(queues)):
            if v != thief and len(queues[v]) > best_len:
                best, best_len = v, len(queues[v])
        if best is not None:
            return best, same_domain and self.thread_domains[best] == self.thread_domains[thief]
        return None


def make_blocks(
    cycles: np.ndarray,
    memory_cycles: np.ndarray | None = None,
    domain: int = 0,
    access_domain_counts: np.ndarray | None = None,
    block_size: int = 1024,
) -> list[WorkBlock]:
    """Aggregate per-item costs into :class:`WorkBlock` chunks.

    Parameters
    ----------
    cycles:
        Per-item total cycles (compute + local-assumption memory).
    memory_cycles:
        Per-item memory-stall cycles (subset of ``cycles``).
    domain:
        NUMA domain owning these items.
    access_domain_counts:
        Optional ``(n_items, num_domains)`` array of access counts per
        target domain.
    block_size:
        Items per block (the paper partitions agent vectors into equal-size
        blocks, Fig. 2 step 2).
    """
    cycles = np.asarray(cycles, dtype=np.float64)
    n = len(cycles)
    if n == 0:
        return []
    if memory_cycles is None:
        memory_cycles = np.zeros(n)
    blocks = []
    for lo in range(0, n, block_size):
        hi = min(lo + block_size, n)
        acc = None
        if access_domain_counts is not None:
            acc = np.asarray(access_domain_counts[lo:hi].sum(axis=0), dtype=np.float64)
        blocks.append(
            WorkBlock(
                cycles=float(np.sum(cycles[lo:hi])),
                memory_cycles=float(np.sum(memory_cycles[lo:hi])),
                preferred_domain=domain,
                domain_accesses=acc,
            )
        )
    return blocks
