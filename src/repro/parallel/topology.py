"""Machine descriptions for the simulated NUMA machine.

The three systems mirror Table 2 of the paper:

- **System A** — four NUMA domains, 72 physical cores, 2-way SMT
  (144 hardware threads), 504 GB DRAM.
- **System B** — same CPU configuration as A with 1008 GB DRAM (used for the
  billion-agent runs).
- **System C** — two Intel Xeon E5-2683 v3 sockets, 28 physical cores, 2-way
  SMT, 62 GB DRAM (used for the 16-core Biocellion comparison).

Latency/throughput constants approximate a Xeon-class core; they are *model
parameters*, set once here, never per-experiment.  The cache "spans" define
the address-distance locality model: an access whose address lies within
``lX_span`` bytes of the most recently touched addresses of the same stream
is charged the level-X latency (see :mod:`repro.parallel.costmodel`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineSpec", "SYSTEM_A", "SYSTEM_B", "SYSTEM_C"]


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a simulated shared-memory NUMA server."""

    name: str
    numa_domains: int
    cores_per_domain: int
    threads_per_core: int
    freq_ghz: float
    dram_gb_per_domain: float

    # Cache/memory latency constants, in core cycles.
    l1_latency: float = 4.0
    l2_latency: float = 14.0
    l3_latency: float = 42.0
    dram_latency: float = 200.0
    remote_dram_latency: float = 350.0

    # Address-distance spans for the locality model, in bytes.
    cache_line: int = 64
    l1_span: int = 32 * 1024
    l2_span: int = 1024 * 1024
    l3_span: int = 24 * 1024 * 1024

    # Superscalar issue width for pure arithmetic (ops per cycle).
    issue_width: float = 2.0

    # SMT efficiency: the second hardware thread of a core contributes this
    # fraction of a full core (matches the paper's hyperthreading speedup
    # plateau in Fig. 10).
    smt_efficiency: float = 0.35

    def with_scaled_caches(self, factor: float) -> "MachineSpec":
        """Spec with cache spans divided by ``factor``.

        Benchmarks run at a fraction of the paper's agent counts; shrinking
        the simulated cache capacity by the same fraction keeps the
        working-set:cache ratio — the quantity the memory optimizations
        act on — faithful to the paper's scale (see DESIGN.md §2).
        """
        from dataclasses import replace

        if factor <= 1.0:
            return self
        floor = 4 * self.cache_line
        return replace(
            self,
            l1_span=max(int(self.l1_span / factor), floor),
            l2_span=max(int(self.l2_span / factor), 2 * floor),
            l3_span=max(int(self.l3_span / factor), 4 * floor),
        )

    @property
    def physical_cores(self) -> int:
        return self.numa_domains * self.cores_per_domain

    @property
    def max_threads(self) -> int:
        return self.physical_cores * self.threads_per_core

    @property
    def dram_gb(self) -> float:
        return self.dram_gb_per_domain * self.numa_domains

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert core cycles to seconds at this frequency."""
        return cycles / (self.freq_ghz * 1e9)

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert seconds to core cycles at this frequency."""
        return seconds * self.freq_ghz * 1e9


# Table 2 of the paper. System A/B: four NUMA domains, 72 physical cores
# total, two threads per core.  System C: two Xeon E5-2683 v3 (2.0 GHz),
# 28 physical cores total, two NUMA domains.
SYSTEM_A = MachineSpec(
    name="System A",
    numa_domains=4,
    cores_per_domain=18,
    threads_per_core=2,
    freq_ghz=2.3,
    dram_gb_per_domain=126.0,
)

SYSTEM_B = MachineSpec(
    name="System B",
    numa_domains=4,
    cores_per_domain=18,
    threads_per_core=2,
    freq_ghz=2.3,
    dram_gb_per_domain=252.0,
)

SYSTEM_C = MachineSpec(
    name="System C",
    numa_domains=2,
    cores_per_domain=14,
    threads_per_core=2,
    freq_ghz=2.0,
    dram_gb_per_domain=31.0,
)
