"""Validation of the fast memory cost model against exact LRU simulation.

The fast address-distance model (:class:`MemoryCostModel`) substitutes
for hardware caches; its job is to *rank* access patterns the way real
caches would — sorted beats unsorted, dense beats scattered — because
every figure that compares memory optimizations only needs the ranking to
be right.  This module generates the canonical trace families and checks
rank agreement against the exact set-associative LRU simulator
(:class:`CacheSim`); the test suite runs it, and it doubles as a tool for
re-validating the model after changing its constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.costmodel import CacheSim, MemoryCostModel
from repro.parallel.topology import MachineSpec, SYSTEM_A

__all__ = ["TRACE_FAMILIES", "generate_trace", "ValidationReport", "validate_model"]

#: Canonical access-pattern families, ordered roughly best -> worst
#: locality.  Each maps to a generator of absolute addresses.
TRACE_FAMILIES = (
    "sequential",
    "small_stride",
    "sorted_neighbors",
    "unsorted_neighbors",
    "random",
)


def generate_trace(family: str, n: int = 4000, seed: int = 0,
                   element: int = 136) -> np.ndarray:
    """Absolute byte addresses of one access-pattern family."""
    rng = np.random.default_rng(seed)
    if family == "sequential":
        return np.arange(n, dtype=np.int64) * element
    if family == "small_stride":
        return np.arange(n, dtype=np.int64) * element * 4
    if family == "sorted_neighbors":
        # Agents in memory order, each touching ~8 nearby payloads.
        base = np.repeat(np.arange(n // 8, dtype=np.int64), 8) * element
        jitter = rng.integers(-4, 5, size=len(base)) * element
        return np.abs(base + jitter)
    if family == "unsorted_neighbors":
        # Same reuse structure, but the payloads are scattered.
        scatter = rng.permutation(n // 8).astype(np.int64) * element * 97
        base = np.repeat(scatter, 8)
        jitter = rng.integers(-4, 5, size=len(base)) * element
        return np.abs(base + jitter)
    if family == "random":
        return rng.integers(0, n * element * 128, size=n).astype(np.int64)
    raise ValueError(f"unknown trace family {family!r}")


def reference_cost_cycles(
    trace: np.ndarray, spec: MachineSpec, cache_bytes: int
) -> tuple[float, int]:
    """Cost of a trace under exact LRU + a next-lines prefetcher.

    Hits cost the L1 latency.  Misses whose address is within a few cache
    lines of the previous access are prefetch-predictable and cost the
    stream rate; unpredictable misses pay the DRAM latency.  Returns
    ``(cycles, raw_miss_count)``.
    """
    sim = CacheSim(size=cache_bytes, assoc=8, line=spec.cache_line)
    prefetch_window = 4 * spec.cache_line
    max_stride = 4096  # hardware stride prefetchers track page-local strides
    cycles = 0.0
    prev = None
    last_stride = None
    for addr in np.asarray(trace, dtype=np.int64):
        addr = int(addr)
        stride = None if prev is None else addr - prev
        predictable = stride is not None and (
            abs(stride) <= prefetch_window
            or (stride == last_stride and abs(stride) <= max_stride)
        )
        if sim.access(addr):
            cycles += spec.l1_latency
        elif predictable:
            cycles += MemoryCostModel.STREAM_LINE_CYCLES
        else:
            cycles += spec.dram_latency
        last_stride = stride
        prev = addr
    return cycles, sim.misses


@dataclass
class ValidationReport:
    """Per-family costs under both models, plus the rank agreement."""

    families: tuple
    lru_misses: dict[str, int]
    fast_cycles: dict[str, float]
    reference_cycles: dict[str, float] | None = None

    @staticmethod
    def _ranks(scores: dict[str, float]) -> dict[str, int]:
        ordered = sorted(scores, key=scores.__getitem__)
        return {f: i for i, f in enumerate(ordered)}

    @property
    def kendall_tau(self) -> float:
        """Rank correlation between the two models (1.0 = same order).

        Compares against the prefetch-aware reference cost when present
        (raw miss counts penalize streaming patterns that real hardware
        prefetches for free), with tied pairs counted as neutral.
        """
        ref = self.reference_cycles or {
            k: float(v) for k, v in self.lru_misses.items()
        }
        a = self._ranks(ref)
        b = self._ranks(self.fast_cycles)
        fams = list(self.families)
        concordant = discordant = 0
        for i in range(len(fams)):
            for j in range(i + 1, len(fams)):
                da = a[fams[i]] - a[fams[j]]
                db = b[fams[i]] - b[fams[j]]
                if da * db > 0:
                    concordant += 1
                elif da * db < 0:
                    discordant += 1
        total = concordant + discordant
        return (concordant - discordant) / total if total else 1.0

    def render(self) -> str:
        """Aligned text table of both model costs plus the tau."""
        lines = [
            f"{'family':20s} {'LRU misses':>11s} {'ref cycles':>11s} "
            f"{'model cycles':>13s}"
        ]
        for f in self.families:
            ref = (self.reference_cycles or {}).get(f, float("nan"))
            lines.append(
                f"{f:20s} {self.lru_misses[f]:11d} {ref:11.0f} "
                f"{self.fast_cycles[f]:13.0f}"
            )
        lines.append(f"rank agreement (Kendall tau): {self.kendall_tau:.2f}")
        return "\n".join(lines)


def validate_model(
    spec: MachineSpec = SYSTEM_A,
    n: int = 4000,
    seed: int = 0,
    cache_bytes: int = 64 * 1024,
) -> ValidationReport:
    """Run every trace family through both models."""
    model = MemoryCostModel(spec)
    lru_misses = {}
    fast_cycles = {}
    reference = {}
    for family in TRACE_FAMILIES:
        trace = generate_trace(family, n=n, seed=seed)
        reference[family], lru_misses[family] = reference_cost_cycles(
            trace, spec, cache_bytes
        )
        fast_cycles[family] = model.total_access_cycles(np.diff(trace))
    return ValidationReport(TRACE_FAMILIES, lru_misses, fast_cycles, reference)
