"""Shared-memory column storage for the process-pool backend (§4.1).

The GIL forbids real thread parallelism over NumPy orchestration code, so
the process backend maps every :class:`~repro.core.resource_manager.
ResourceManager` column into ``multiprocessing.shared_memory`` blocks
that persistent worker processes attach once and then *view* — kernels
read and write agent state with zero pickling and zero copies.

Three pieces live here:

- :class:`HostArena` — the owner side.  A named, growable set of blocks;
  ``ensure(name, shape, dtype)`` returns a NumPy view over a block with
  enough capacity, replacing (never resizing in place) the block when a
  column outgrows it.  Replaced blocks are unlinked immediately but kept
  mapped until shutdown: POSIX keeps the memory alive while any process
  maps it, and closing a mapping that still has exported NumPy views
  would raise ``BufferError``.
- :class:`WorkerArena` — the worker side.  ``sync(layout)`` diffs the
  host's ``{name: shm_name}`` layout against the currently attached
  blocks and (re)attaches only what changed, so steady-state steps remap
  nothing.
- :class:`SharedMemoryResourceManager` — a ``ResourceManager`` whose
  :meth:`~repro.core.resource_manager.ResourceManager._store` hook copies
  every (re)allocated column into an arena view.  All structural engine
  code (insert, the §3.2 removal algorithm, reorder) is inherited
  unchanged; only the final placement of each column differs.
"""

from __future__ import annotations

import atexit
import sys
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.core.resource_manager import ResourceManager

__all__ = [
    "attach_block",
    "HostArena",
    "WorkerArena",
    "SharedMemoryResourceManager",
]

#: Smallest block ever allocated; avoids churning tiny blocks while a
#: simulation is still growing from a handful of agents.
_MIN_BLOCK_BYTES = 256


def attach_block(name: str) -> shared_memory.SharedMemory:
    """Attach an existing block without resource-tracker ownership.

    Python < 3.13 auto-registers *attached* segments with the resource
    tracker, which then unlinks them when the attaching process exits —
    yanking memory out from under the owner.  3.13 grew ``track=False``
    for exactly this; on older versions, registration is suppressed for
    the duration of the attach (unregistering *after* would not do:
    forked workers share the parent's tracker process, so an unregister
    would erase the creator's own registration).
    """
    if sys.version_info >= (3, 13):
        return shared_memory.SharedMemory(name=name, track=False)
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *a, **kw: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


@dataclass
class _Block:
    shm: shared_memory.SharedMemory
    capacity: int


#: Arenas still holding OS resources; closed at interpreter exit so
#: abandoned simulations cannot leak named segments.
_LIVE_ARENAS: list["HostArena"] = []


class HostArena:
    """Owner of a set of named, growable shared-memory arrays."""

    def __init__(self):
        self._blocks: dict[str, _Block] = {}
        #: Unlinked-but-still-mapped blocks (NumPy views may be alive).
        self._graveyard: list[shared_memory.SharedMemory] = []
        #: Bumped whenever any block is replaced; lets callers detect that
        #: previously written scratch contents are gone.
        self.layout_version = 0
        self.closed = False
        _LIVE_ARENAS.append(self)

    def ensure(self, name: str, shape, dtype) -> np.ndarray:
        """View of block ``name`` with shape/dtype, (re)allocating on growth.

        Growth replaces the block (geometric capacity doubling) — the old
        contents are *not* carried over; callers re-fill after a replace,
        which ``layout_version`` makes detectable.
        """
        if self.closed:
            raise RuntimeError("arena is closed")
        dtype = np.dtype(dtype)
        shape = tuple(int(s) for s in shape)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        block = self._blocks.get(name)
        if block is None or block.capacity < nbytes:
            capacity = max(_MIN_BLOCK_BYTES, nbytes,
                           2 * (block.capacity if block else 0))
            fresh = shared_memory.SharedMemory(create=True, size=capacity)
            if block is not None:
                self._retire(block.shm)
            block = _Block(fresh, capacity)
            self._blocks[name] = block
            self.layout_version += 1
        return np.ndarray(shape, dtype=dtype, buffer=block.shm.buf)

    def layout(self) -> dict[str, str]:
        """``{logical name: OS segment name}`` for workers to attach."""
        return {name: blk.shm.name for name, blk in self._blocks.items()}

    def _retire(self, block: shared_memory.SharedMemory) -> None:
        # Unlink now (no new attachments; the OS frees the memory once the
        # last mapping goes), close the mapping only at shutdown because
        # live NumPy views pin the buffer.
        try:
            block.unlink()
        except FileNotFoundError:
            pass
        self._graveyard.append(block)

    def close(self) -> None:
        """Unlink every block and drop mappings (best effort)."""
        if self.closed:
            return
        self.closed = True
        for block in self._blocks.values():
            self._retire(block.shm)
        self._blocks = {}
        for block in self._graveyard:
            try:
                block.close()
            except BufferError:
                # NumPy views still alive somewhere; the segment is already
                # unlinked, so the OS reclaims it when the process exits.
                pass
        self._graveyard = []
        if self in _LIVE_ARENAS:
            _LIVE_ARENAS.remove(self)


@atexit.register
def _close_live_arenas() -> None:
    for arena in list(_LIVE_ARENAS):
        arena.close()


class WorkerArena:
    """Worker-side mirror: attach blocks by layout, view them as arrays."""

    def __init__(self):
        self._blocks: dict[str, shared_memory.SharedMemory] = {}
        self._graveyard: list[shared_memory.SharedMemory] = []

    def sync(self, layout: dict[str, str]) -> None:
        """(Re)attach so the local mapping matches the host's layout."""
        for name, shm_name in layout.items():
            current = self._blocks.get(name)
            if current is not None and current.name == shm_name:
                continue
            if current is not None:
                self._drop(current)
            self._blocks[name] = attach_block(shm_name)
        for name in [n for n in self._blocks if n not in layout]:
            self._drop(self._blocks.pop(name))
        # Retry mappings whose close was blocked by then-live views.
        still_pinned = []
        for block in self._graveyard:
            try:
                block.close()
            except BufferError:
                still_pinned.append(block)
        self._graveyard = still_pinned

    def _drop(self, block: shared_memory.SharedMemory) -> None:
        try:
            block.close()
        except BufferError:
            self._graveyard.append(block)

    def view(self, name: str, shape, dtype, offset: int = 0) -> np.ndarray:
        """NumPy view over the attached block ``name``.

        ``offset`` addresses a column region inside a consolidated SoA
        block (:mod:`repro.core.arena`); 0 views the whole block.
        """
        return np.ndarray(tuple(shape), dtype=np.dtype(dtype),
                          buffer=self._blocks[name].buf, offset=int(offset))

    def close(self) -> None:
        """Drop all mappings (best effort; pinned buffers are skipped)."""
        for block in list(self._blocks.values()) + self._graveyard:
            try:
                block.close()
            except BufferError:
                pass
        self._blocks = {}
        self._graveyard = []


#: Arena key prefix under which agent columns are stored ("col:position",
#: "col:diameter", ...).  The process backend adds scratch blocks under
#: other prefixes ("csr:", "mech:") in the same arena.
COLUMN_PREFIX = "col:"

#: Block name of the consolidated SoA arena (``Param.soa_arena=True``):
#: every agent column is a region inside this one segment, so workers
#: attach the whole agent state with a single ``mmap``.
SOA_BLOCK = "soa:block"


class SharedMemoryResourceManager(ResourceManager):
    """ResourceManager whose columns live in shared memory.

    Structural operations build their result arrays in private memory
    exactly as the base class does; the :meth:`_store` hook then copies
    each final array into an arena-backed view so worker processes can
    map it.  ``self.data`` values are therefore always views over the
    arena — in-place mutation (``col[:] = ...``, ``col[idx] += ...``) is
    visible to workers, while wholesale re-binding must go through
    ``_store`` (the engine's only re-binding sites already do).
    """

    def __init__(self, *args, arena: HostArena | None = None, **kwargs):
        owns_arena = arena is None
        self.arena = arena if arena is not None else HostArena()
        if owns_arena:
            # A session that dies mid-step (worker crash, exception during
            # ``simulate``) may never reach ``Simulation.close()``; without
            # this, the named segments survive in /dev/shm until interpreter
            # exit (``_LIVE_ARENAS``) — or forever, if the process is
            # SIGKILLed after fork.  Finalize on *this* manager being
            # collected, not on the arena: an externally-owned arena may be
            # shared across managers and must outlive any one of them.
            # ``HostArena.close`` is idempotent, so an orderly
            # ``Simulation.close()`` first is harmless.
            self._arena_finalizer = weakref.finalize(
                self, HostArena.close, self.arena
            )
        else:
            self._arena_finalizer = None
        super().__init__(*args, **kwargs)

    def _make_soa_arena(self):
        # Single-block mode (``Param.soa_arena``): the SoA arena's backing
        # buffer is one named shared-memory segment, so workers attach the
        # entire agent state with a single mmap and the base class's arena
        # paths (one contiguous region per column, shared capacity) apply
        # unchanged.  ``HostArena.ensure`` may hand back the same segment
        # when its capacity suffices — the arena snapshots live rows
        # before repacking, so aliasing reallocation is safe.
        from repro.core.arena import SoAArena

        return SoAArena(
            allocate=lambda nbytes: self.arena.ensure(
                SOA_BLOCK, (int(nbytes),), np.uint8)
        )

    def _store(self, name: str, arr: np.ndarray) -> None:
        if self.soa is not None:
            super()._store(name, arr)
            return
        arr = np.asarray(arr)
        view = self.arena.ensure(COLUMN_PREFIX + name, arr.shape, arr.dtype)
        if view.size:
            view[...] = arr
        self.data[name] = view

    def _grow_column(self, name: str, new_n: int) -> np.ndarray:
        if self.soa is not None:
            return super()._grow_column(name, new_n)
        # The fast-append commit path extends a column in place and fills
        # only the new tail.  Here the column must stay arena-backed, so
        # instead of the base class's private capacity buffers, ask the
        # arena for a longer view over the same block.  Existing rows are
        # only copied when they are not already the block prefix: either
        # the arena replaced the block on growth (``ensure`` never carries
        # contents over), or ``self.data[name]`` was re-bound to private
        # memory behind the arena's back (e.g. checkpoint restore).
        old = self.data[name]
        before = self.arena.layout_version
        view = self.arena.ensure(
            COLUMN_PREFIX + name, (new_n, *old.shape[1:]), old.dtype
        )
        replaced = self.arena.layout_version != before
        if self.n and (
            replaced
            or old.__array_interface__["data"][0]
            != view.__array_interface__["data"][0]
        ):
            view[: self.n] = old[: self.n]
        self.data[name] = view
        return view
