"""Distributed execution backend: spatially sharded halo-exchange engine.

Promotes :mod:`repro.distributed` from the virtual cluster sketch
(:mod:`repro.distributed.engine`) to a real
``Param.execution_backend="distributed"``, following *TeraAgent:
Simulating Half a Trillion Agents* (PAPERS.md): the simulation domain is
partitioned across OS-process shards along a space-filling curve
(:class:`repro.distributed.partition.SpatialPartition`), each shard owns
a contiguous key span plus a **halo ring** of ghost agents at boundary
width ``interaction_radius + skin``, and every step runs the same
two-phase barriered protocol as the process backend's mechanics
dispatch:

1. **force** — the host synchronizes each shard's ``owned ∪ halo``
   replica (delta-encoded against the last exchanged epoch, see
   :mod:`repro.distributed.delta`), the shard builds a *shard-local*
   uniform grid + CSR over its replica and computes net forces for its
   owned rows; the host gathers every shard's contribution (the
   reduction barrier).
2. **displace** — each shard applies the clamped Euler displacement to
   its owned rows and acks the new positions, moved flags, and a
   per-shard digest; the host scatters results, rolls the shard digests
   into a global digest, verifies it against its own authoritative
   columns, and counts ownership migrations (agents whose cell crossed
   a partition cut).

**Bitwise identity to serial** (gated by
``verify.replay.distributed_equivalence``) follows from three facts:
the uniform grid emits canonically ordered CSR rows that are a pure
function of ``(positions, radius)``, so a shard-local build over the
halo-superset replica reproduces each owned row's neighbor list exactly
(content *and* order) under the monotone local→global index mapping;
per-row force accumulation (``np.bincount`` in CSR order) and the
degenerate-pair tie-break (``qi < qj``) are preserved under that
monotone mapping; and displacement is row-elementwise.  Shards run the
NumPy reference kernels (the bitwise branch of ``repro.kernels``).

Known limits (see ``docs/distributed.md``): agent operations fall back
to host-serial execution; behaviors that mutate positions directly
between the environment build and mechanics are outside the bitwise
contract (they are equally outside the neighbor cache's contract).
"""

from __future__ import annotations

import hashlib
import pickle
import time

import multiprocessing as mp

import numpy as np

from repro.core.arena import SoAArena
from repro.core.force import ForceResult
from repro.distributed.delta import apply_delta, dirty_rows, encode_delta
from repro.distributed.partition import SpatialPartition
from repro.distributed.transport import (
    TransportError,
    make_transport,
)
from repro.kernels import numpy_ref
from repro.parallel.backend import ExecutionBackend
from repro.parallel.process_backend import BackendError

__all__ = ["DistributedBackend", "shard_main", "SYNC_COLUMNS"]

#: Columns every shard replica carries (in arena packing order).  The
#: force phase reads all three; ``static`` gates the active mask when
#: §5 static-agent detection is on.
SYNC_COLUMNS = ("position", "diameter", "static")

#: Fallback halo skin as a fraction of the interaction radius when
#: ``Param.neighbor_skin`` is auto (0) — matches the upper clamp of the
#: scheduler's auto-tuned Verlet skin.
HALO_SKIN_FRACTION = 0.1


def _column_dict(rm, rows: np.ndarray) -> dict:
    """Host-side gather of the sync columns for ``rows``."""
    return {name: np.ascontiguousarray(rm.data[name][rows])
            for name in SYNC_COLUMNS}


def _shard_digest(ids_owned: np.ndarray, positions_owned: np.ndarray) -> str:
    """Digest of one shard's owned state (ids + position bytes)."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(ids_owned).tobytes())
    h.update(np.ascontiguousarray(positions_owned).tobytes())
    return h.hexdigest()


# --------------------------------------------------------------------- #
# Shard worker process
# --------------------------------------------------------------------- #


class _ShardState:
    """A shard's replica: membership ids + columns in a local SoA arena."""

    def __init__(self):
        self.arena = SoAArena()
        self.arena.add_column("position", np.float64, (3,))
        self.arena.add_column("diameter", np.float64, ())
        self.arena.add_column("static", np.bool_, ())
        self.ids = np.empty(0, dtype=np.int64)
        self.owned = np.empty(0, dtype=bool)
        self.net = np.zeros((0, 3))

    @property
    def k(self) -> int:
        """Replica rows (owned + halo)."""
        return len(self.ids)

    def columns(self) -> dict:
        """Zero-copy views of the live replica columns."""
        return {name: self.arena.view(name, self.k) for name in SYNC_COLUMNS}

    def apply_sync(self, mode: str, ids: np.ndarray, blob: bytes) -> None:
        """Install a sync payload as the new replica."""
        if mode == "pack":
            self.arena.reserve(len(ids), 0)
            self.ids = ids
            self.arena.unpack_rows(
                SYNC_COLUMNS, np.arange(len(ids), dtype=np.int64), blob,
                len(ids),
            )
        else:
            new_ids, new_cols = apply_delta(blob, self.ids, self.columns())
            self.arena.reserve(len(new_ids), 0)
            self.ids = new_ids
            for name in SYNC_COLUMNS:
                self.arena.view(name, len(new_ids))[...] = new_cols[name]


def shard_main(shard_id: int, endpoint, box_length_factor: float) -> None:
    """Shard worker loop: sync replica, force, displace, repeat.

    Runs in a forked child.  Every phase message is answered with
    exactly one ack; errors are reported back as an ``("error", ...)``
    header so the host can fail loudly instead of hanging.
    """
    from repro.env.uniform_grid import UniformGridEnvironment

    state = _ShardState()
    env = UniformGridEnvironment(box_length_factor=box_length_factor)
    try:
        while True:
            try:
                header, payload = endpoint.recv()
            except TransportError:
                break
            kind = header[0]
            if kind == "stop":
                break
            try:
                if kind == "force":
                    (_, epoch, mode, ids_bytes, owned_bytes, radius,
                     detect, grid_fix, force_blob) = header
                    ids = np.frombuffer(ids_bytes, dtype=np.int64)
                    state.apply_sync(mode, ids.copy(), payload)
                    state.owned = np.frombuffer(
                        owned_bytes, dtype=np.bool_).copy()
                    force_model = pickle.loads(force_blob)
                    cols = state.columns()
                    k = state.k
                    t0 = time.perf_counter()
                    net = np.zeros((k, 3))
                    nz = np.zeros(k, dtype=np.int64)
                    pairs = 0
                    if k:
                        # The neighbor CSR is defined by the positions the
                        # host's environment build saw; behaviors may have
                        # moved agents since (grid_fix carries the
                        # affected rows' build-time coordinates).  Forces
                        # then use the *current* positions, exactly like
                        # the serial path.
                        grid_pos = cols["position"]
                        if grid_fix is not None:
                            idx_b, pos_b = grid_fix
                            grid_pos = grid_pos.copy()
                            fix_idx = np.frombuffer(idx_b, dtype=np.int64)
                            grid_pos[fix_idx] = np.frombuffer(
                                pos_b, dtype=np.float64
                            ).reshape(len(fix_idx), 3)
                        env.update(grid_pos, radius)
                        indptr, indices = env.neighbor_csr()
                        active = state.owned & ~cols["static"] if detect \
                            else state.owned
                        pairs = numpy_ref.force_rows(
                            cols["position"], cols["diameter"], indptr,
                            indices, active, net, nz, 0, k,
                            pair_fn=force_model.pair_forces,
                        )
                    state.net = net
                    compute_s = time.perf_counter() - t0
                    own = np.flatnonzero(state.owned)
                    ack_payload = (
                        np.ascontiguousarray(net[own]).tobytes()
                        + np.ascontiguousarray(nz[own]).tobytes()
                    )
                    endpoint.send(
                        ("force_ack", epoch, len(own), int(pairs),
                         compute_s),
                        ack_payload,
                    )
                elif kind == "displace":
                    _, epoch, dt, max_disp = header
                    t0 = time.perf_counter()
                    own = np.flatnonzero(state.owned)
                    cols = state.columns()
                    pos_own = cols["position"][own].copy()
                    moved = np.zeros(len(own), dtype=bool)
                    numpy_ref.displace(
                        pos_own, moved, state.net[own], dt, max_disp
                    )
                    # Keep the replica's owned rows current: the host's
                    # delta baseline assumes the shard holds exactly the
                    # values it acked.
                    cols["position"][own] = pos_own
                    pos_blob = state.arena.pack_rows(
                        ["position"], own, state.k
                    )
                    digest = _shard_digest(state.ids[own], pos_own)
                    compute_s = time.perf_counter() - t0
                    endpoint.send(
                        ("displace_ack", epoch, len(own), digest,
                         compute_s),
                        pos_blob.tobytes() + moved.tobytes(),
                    )
                else:
                    endpoint.send(
                        ("error", f"shard {shard_id}: unknown phase "
                         f"{kind!r}"),
                    )
            except Exception as exc:  # surface, don't hang the host
                import traceback

                endpoint.send(
                    ("error",
                     f"shard {shard_id}: {exc}\n{traceback.format_exc()}"),
                )
    finally:
        endpoint.close()


# --------------------------------------------------------------------- #
# Host backend
# --------------------------------------------------------------------- #


class DistributedBackend(ExecutionBackend):
    """Spatially sharded execution backend (``execution_backend=
    "distributed"``).

    The host process stays authoritative for the full agent state
    (``sim.rm``); shards hold delta-synchronized ``owned ∪ halo``
    replicas and execute the mechanics phases.  See the module docstring
    for the protocol and the bitwise-identity argument; counters surface
    under the ``dist:`` prefix in ``sim.obs``.
    """

    name = "distributed"

    def __init__(self, sim, shards: int | None = None,
                 transport: str | None = None):
        p = sim.param
        self.sim = sim
        self.num_shards = int(shards or p.backend_shards or 2)
        if self.num_shards < 1:
            raise ValueError("distributed backend needs >= 1 shard")
        self.transport_kind = transport or p.distributed_transport
        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._ctx = mp.get_context(method)
        self._procs: list = []
        self._endpoints: list = []
        self._started = False
        self._dead = False
        self._epoch = 0
        # Partition + per-shard sync baselines (host bookkeeping).
        self._partition: SpatialPartition | None = None
        self._partition_struct: int | None = None
        self._ids: list = [None] * self.num_shards
        self._baseline: list = [None] * self.num_shards
        #: Positions the current CSR was materialized from (set by the
        #: scheduler via :meth:`stash_csr_positions`, consumed once).
        self._csr_positions: np.ndarray | None = None
        # --- instrumentation (dist:* metrics) --------------------------- #
        reg = sim.obs.registry
        reg.gauge("dist:shards").set(self.num_shards)
        self._halo_agents = reg.counter("dist:halo_agents")
        self._halo_bytes = reg.counter("dist:halo_bytes")
        self._migrations = reg.counter("dist:migrations")
        self._sync_full = reg.counter("dist:sync_full")
        self._sync_delta = reg.counter("dist:sync_delta")
        self.exchange_seconds = 0.0
        self.compute_seconds = 0.0
        reg.register_callback(
            "dist:exchange_seconds", lambda: self.exchange_seconds)
        self.steps = 0
        self.digest_checks = 0
        self.last_global_digest: str | None = None

    # -- pool lifecycle ------------------------------------------------- #

    def _shard_endpoint(self, shard: int) -> str:
        """Bind address for one shard's socket transport link.

        ``Param.distributed_endpoint`` names the base ``host:port``;
        each shard listens one port higher than the last so the links
        stay distinguishable (port 0 stays 0 — the OS hands every shard
        its own ephemeral port).  Empty endpoint or a non-socket
        transport → empty string (the socketpair stub / ignored).
        """
        endpoint = self.sim.param.distributed_endpoint
        if not endpoint or self.transport_kind != "socket":
            return ""
        host, _, port_text = endpoint.rpartition(":")
        port = int(port_text)
        return f"{host}:{port + shard if port else 0}"

    def _start(self) -> None:
        if mp.current_process().daemon:
            raise BackendError(
                "distributed backend cannot start inside a daemonic "
                "process (e.g. a serve-pool worker); use "
                "execution_backend='serial'"
            )
        if self.transport_kind == "shm":
            # Start the shared-memory resource tracker *before* forking:
            # parent and shards then share one tracker, so a segment
            # registered by its creator and again by an attacher is a
            # single deduplicated entry that the creator's unlink clears
            # (a tracker forked per shard would "clean up" the host's
            # segments at shard exit).
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        box_factor = getattr(self.sim.env, "box_length_factor", 1.0)
        for s in range(self.num_shards):
            host_end, shard_end = make_transport(
                self.transport_kind, self._shard_endpoint(s)
            )
            proc = self._ctx.Process(
                target=shard_main,
                args=(s, shard_end, box_factor),
                daemon=True,
                name=f"repro-shard-{s}",
            )
            proc.start()
            self._procs.append(proc)
            self._endpoints.append(host_end)
        self._started = True

    def shutdown(self) -> None:
        """Stop shard processes and release transports; idempotent."""
        if self._started:
            for ep in self._endpoints:
                try:
                    ep.send(("stop",))
                except TransportError:
                    pass
            for proc in self._procs:
                proc.join(timeout=5)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join(timeout=1)
            for ep in self._endpoints:
                ep.close()
            self._procs = []
            self._endpoints = []
            self._started = False

    def _recv_ack(self, shard: int, expected: str, epoch: int):
        try:
            header, payload = self._endpoints[shard].recv()
        except TransportError as exc:
            self._dead = True
            self.shutdown()
            raise BackendError(
                f"shard {shard} transport failed: {exc}"
            ) from exc
        if header[0] == "error":
            self._dead = True
            self.shutdown()
            raise BackendError(header[1])
        if header[0] != expected or header[1] != epoch:
            self._dead = True
            self.shutdown()
            raise BackendError(
                f"shard {shard} answered {header[0]!r}/{header[1]} to "
                f"{expected!r}/{epoch} (protocol desync)"
            )
        return header, payload

    def stash_csr_positions(self, rm) -> None:
        """Snapshot the positions the freshly materialized CSR is defined
        by (behaviors may move agents before mechanics runs)."""
        self._csr_positions = rm.positions.copy()

    # -- partition / sync ------------------------------------------------ #

    def _ensure_partition(self, rm, radius: float) -> SpatialPartition:
        if (self._partition is None
                or self._partition_struct != rm.structure_version):
            self._partition = SpatialPartition(
                rm.positions, radius, self.num_shards,
                curve=self.sim.param.space_filling_curve,
            )
            self._partition_struct = rm.structure_version
            # Membership indices are storage indices: any structural
            # change invalidates every shard baseline → full resync.
            self._ids = [None] * self.num_shards
            self._baseline = [None] * self.num_shards
        return self._partition

    def _encode_sync(self, rm, shard: int, members: np.ndarray) -> tuple:
        """Delta (or full) payload bringing ``shard`` to ``members``."""
        if self._ids[shard] is None:
            soa = getattr(rm, "soa", None)
            if soa is not None and all(
                    name in soa.column_names() for name in SYNC_COLUMNS):
                # Full resync straight off the host's SoA arena block:
                # one contiguous packed slice instead of per-column
                # copies.
                mode, blob = "pack", soa.pack_rows(
                    SYNC_COLUMNS, members, rm.n).tobytes()
            else:
                mode, blob = "delta", encode_delta(
                    members, _column_dict(rm, members))
            self._sync_full.inc()
        else:
            mode, blob = "delta", encode_delta(
                members, _column_dict(rm, members),
                self._ids[shard], self._baseline[shard],
            )
            self._sync_delta.inc()
        self._ids[shard] = members
        self._baseline[shard] = _column_dict(rm, members)
        return mode, blob

    # -- the two-phase step ---------------------------------------------- #

    def force_and_displace(self, sim, indptr, indices, detect):
        """Run one sharded mechanics step (see the module docstring).

        ``indptr``/``indices`` — the host-built global CSR — are left to
        the scheduler's static-detection pass; force rows come from each
        shard's local grid, built at the exact radius of the host's
        current environment build so both derivations of every neighbor
        row agree bitwise.
        """
        rm = sim.rm
        p = sim.param
        n = rm.n
        if self._dead:
            raise BackendError("distributed backend is dead after an "
                               "earlier failure; rebuild the simulation")
        if n == 0:
            return ForceResult(np.zeros((0, 3)), np.zeros(0, np.int64), 0)
        if not self._started:
            self._start()
        self._epoch += 1
        epoch = self._epoch
        # The radius of the CSR build this iteration's mechanics uses
        # (may predate behavior-driven diameter growth this step).
        env_key = getattr(sim.scheduler, "_env_key", None)
        radius = float(env_key[0]) if env_key else sim.interaction_radius()
        part = self._ensure_partition(rm, radius)
        skin = p.neighbor_skin if p.neighbor_skin > 0 \
            else HALO_SKIN_FRACTION * radius
        # Pairs are defined by the positions the CSR was materialized
        # from (pre-behavior snapshot, when the scheduler provided one):
        # ownership, halo membership, and the shard grid builds all use
        # the snapshot; force math and displacement use current rows.
        snap = self._csr_positions
        if snap is None or len(snap) != n:
            snap = rm.positions
        owner_before = part.owner_of(snap)
        owned_masks, ghost_masks = part.members(
            snap, halo_width=radius + skin)
        moved_since_build = dirty_rows(rm.positions, snap)
        force_blob = pickle.dumps(sim.force)

        send_s = 0.0
        owned_idx = []
        for s in range(self.num_shards):
            members = np.flatnonzero(owned_masks[s] | ghost_masks[s])
            owned_idx.append(np.flatnonzero(owned_masks[s][members]))
            self._halo_agents.inc(int(ghost_masks[s].sum()))
            mode, blob = self._encode_sync(rm, s, members)
            self._halo_bytes.inc(len(blob))
            grid_fix = None
            fixed = np.flatnonzero(moved_since_build[members])
            if len(fixed):
                grid_fix = (
                    fixed.tobytes(),
                    np.ascontiguousarray(snap[members[fixed]]).tobytes(),
                )
            header = ("force", epoch, mode, members.tobytes(),
                      np.ascontiguousarray(
                          owned_masks[s][members]).tobytes(),
                      radius, bool(detect), grid_fix, force_blob)
            t0 = time.perf_counter()
            try:
                self._endpoints[s].send(header, blob)
            except TransportError as exc:
                self._dead = True
                self.shutdown()
                raise BackendError(
                    f"shard {s} send failed: {exc}") from exc
            send_s += time.perf_counter() - t0

        # Phase 1 barrier: gather every shard's force reduction.
        net = np.zeros((n, 3))
        nz = np.zeros(n, dtype=np.int64)
        pairs = 0
        t_recv = time.perf_counter()
        max_compute = 0.0
        for s in range(self.num_shards):
            header, payload = self._recv_ack(s, "force_ack", epoch)
            _, _, k_own, pairs_s, compute_s = header
            pairs += pairs_s
            max_compute = max(max_compute, compute_s)
            ids_own = self._ids[s][owned_idx[s]]
            net_bytes = 24 * k_own
            net[ids_own] = np.frombuffer(
                payload, dtype=np.float64, count=3 * k_own
            ).reshape(k_own, 3)
            nz[ids_own] = np.frombuffer(
                payload, dtype=np.int64, count=k_own, offset=net_bytes)
        force_wall = time.perf_counter() - t_recv

        # Phase 2: displacement + ownership migration.
        t0 = time.perf_counter()
        for s in range(self.num_shards):
            self._endpoints[s].send(
                ("displace", epoch, p.simulation_time_step,
                 p.simulation_max_displacement))
        send_s += time.perf_counter() - t0
        t_recv = time.perf_counter()
        shard_digests = []
        displace_compute = 0.0
        for s in range(self.num_shards):
            header, payload = self._recv_ack(s, "displace_ack", epoch)
            _, _, k_own, digest, compute_s = header
            displace_compute = max(displace_compute, compute_s)
            ids_own = self._ids[s][owned_idx[s]]
            pos_bytes = 24 * k_own
            pos_own = np.frombuffer(
                payload, dtype=np.float64, count=3 * k_own
            ).reshape(k_own, 3)
            moved = np.frombuffer(
                payload, dtype=np.bool_, count=k_own, offset=pos_bytes)
            rm.positions[ids_own] = pos_own
            rm.data["moved"][ids_own] |= moved
            # The baseline must mirror what the shard holds *after* the
            # step, or the next delta would re-ship every displaced row.
            self._baseline[s]["position"][owned_idx[s]] = pos_own
            shard_digests.append(digest)
            # Replica-consistency gate: the digest of what the shard
            # acked must match a re-derivation from the authoritative
            # columns it was just scattered into.
            if digest != _shard_digest(ids_own, rm.positions[ids_own]):
                self._dead = True
                self.shutdown()
                raise BackendError(
                    f"shard {s} digest mismatch at epoch {epoch}: "
                    "replica diverged from authoritative state"
                )
            self.digest_checks += 1
        displace_wall = time.perf_counter() - t_recv

        roll = hashlib.sha256()
        for digest in shard_digests:
            roll.update(digest.encode("ascii"))
        self.last_global_digest = roll.hexdigest()

        owner_after = part.owner_of(rm.positions)
        self._migrations.inc(int((owner_after != owner_before).sum()))
        self.compute_seconds += max_compute + displace_compute
        self.exchange_seconds += send_s + max(
            0.0, force_wall - max_compute
        ) + max(0.0, displace_wall - displace_compute)
        self.steps += 1
        self._csr_positions = None  # one snapshot per materialized CSR
        return ForceResult(net, nz, int(pairs))

    # -- reporting -------------------------------------------------------- #

    def member_ids(self) -> list:
        """Per-shard membership (sorted global indices) of the last sync,
        ``None`` for shards that never synced — consumed by the
        halo-ownership invariant check."""
        return list(self._ids)

    def owned_masks(self):
        """Per-shard owned masks over the full population at the current
        positions (pure partition query; ``None`` before the first
        step)."""
        if self._partition is None:
            return None
        rm = self.sim.rm
        owner = self._partition.owner_of(rm.positions)
        return [owner == s for s in range(self.num_shards)]

    def stats(self) -> dict:
        """Counters for ``trace``/bench reporting (dist:* mirror)."""
        reg = self.sim.obs.registry
        return {
            "shards": self.num_shards,
            "transport": self.transport_kind,
            "steps": self.steps,
            "halo_agents": int(self._halo_agents.value),
            "halo_bytes": int(self._halo_bytes.value),
            "migrations": int(self._migrations.value),
            "sync_full": int(self._sync_full.value),
            "sync_delta": int(self._sync_delta.value),
            "exchange_seconds": self.exchange_seconds,
            "compute_seconds": self.compute_seconds,
            "digest_checks": self.digest_checks,
            "last_global_digest": self.last_global_digest,
        }
