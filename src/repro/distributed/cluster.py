"""Cluster description for the distributed engine."""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.topology import MachineSpec, SYSTEM_A

__all__ = ["ClusterSpec"]


@dataclass(frozen=True)
class ClusterSpec:
    """N identical nodes joined by an interconnect.

    The defaults approximate a commodity HPC fabric (EDR InfiniBand-ish):
    1.5 us one-way latency, 12 GB/s effective point-to-point bandwidth.
    """

    num_nodes: int
    node_spec: MachineSpec = SYSTEM_A
    threads_per_node: int | None = None
    network_latency_s: float = 1.5e-6
    network_bandwidth_bytes_per_s: float = 12e9

    def __post_init__(self):
        if self.num_nodes < 1:
            raise ValueError("need at least one node")
        if self.network_latency_s < 0 or self.network_bandwidth_bytes_per_s <= 0:
            raise ValueError("invalid network parameters")

    def transfer_seconds(self, nbytes: float) -> float:
        """Time for one point-to-point message of ``nbytes``."""
        if nbytes <= 0:
            return 0.0
        return self.network_latency_s + nbytes / self.network_bandwidth_bytes_per_s
