"""Partition-invariant random motility for the distributed engine.

Random movement in a distributed simulation must not depend on *which
node* computes an agent, or results would change with the node count.
The standard solution is counter-based randomness: every agent's step is
a pure function of ``(seed, uid, iteration)``.  We hash those with
SplitMix64 (vectorized over agents) and map the uniform bits to Gaussian
steps with Box–Muller, so any decomposition produces identical motion.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BrownianMotion"]

_U = np.uint64


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 finalizer (high-quality 64-bit mixing)."""
    x = x + _U(0x9E3779B97F4A7C15)
    x = (x ^ (x >> _U(30))) * _U(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> _U(27))) * _U(0x94D049BB133111EB)
    return x ^ (x >> _U(31))


def _uniforms(seed: int, uids: np.ndarray, iteration: int, lane: int) -> np.ndarray:
    """Deterministic uniforms in (0, 1), one per uid."""
    base = (
        _U(seed & 0xFFFFFFFFFFFFFFFF)
        ^ (_U(iteration & 0xFFFFFFFF) << _U(32))
        ^ (_U(lane) << _U(16))
    )
    bits = _splitmix64(uids.astype(_U) * _U(0x9E3779B97F4A7C15) + base)
    # Top 53 bits -> double in [0,1); nudge away from exact 0.
    u = (bits >> _U(11)).astype(np.float64) * (1.0 / (1 << 53))
    return np.clip(u, 1e-16, 1.0 - 1e-16)


class BrownianMotion:
    """Gaussian random steps that are a pure function of (uid, iteration)."""

    def __init__(self, speed: float, seed: int = 0):
        self.speed = speed
        self.seed = seed

    def displacements(self, uids: np.ndarray, iteration: int, dt: float) -> np.ndarray:
        """(n, 3) Gaussian steps for the given agents at this iteration."""
        uids = np.asarray(uids, dtype=np.int64)
        out = np.empty((len(uids), 3))
        scale = self.speed * dt
        for axis in range(3):
            u1 = _uniforms(self.seed, uids, iteration, lane=2 * axis)
            u2 = _uniforms(self.seed, uids, iteration, lane=2 * axis + 1)
            # Box-Muller.
            out[:, axis] = scale * np.sqrt(-2.0 * np.log(u1)) * np.cos(
                2.0 * np.pi * u2
            )
        return out
