"""SFC-based spatial partition for the distributed execution backend.

Space is quantized into uniform cells of side ``interaction radius`` on
a geometry **frozen at build time** (mins/dims captured once), each cell
is ranked along a space-filling curve (Morton or Hilbert, reusing
:mod:`repro.sfc` — the same curves agent sorting uses), and the ranked
key range is cut into equal-population spans: shard ``s`` owns every
agent whose cell key falls in span ``s``.

Two properties carry the backend's correctness argument:

- **Ownership is a pure function of the cell.**  The cuts partition the
  key space, and keys depend only on the (clamped) cell coordinate, so
  two agents in the same cell always share an owner — which is what
  makes the stencil-based halo computation a sound superset (see
  :meth:`SpatialPartition.members`).
- **The geometry is frozen.**  Re-deriving mins/dims from moving
  positions every step would re-bin *every* agent whenever the bounding
  box shifts; freezing the geometry makes ownership changes track
  actual cell crossings, which is what the ``dist:migrations`` counter
  means.  Positions that drift outside the frozen box clamp to the
  boundary cells (clamping is non-expansive, so the halo superset bound
  survives).

The partition is rebuilt (fresh geometry + fresh equal-count cuts) on
population structure changes; between rebuilds agents migrate between
shards as they cross cell boundaries.
"""

from __future__ import annotations

import numpy as np

from repro.sfc.hilbert import hilbert_encode_nd
from repro.sfc.morton import morton_encode_3d

__all__ = ["SpatialPartition"]


class SpatialPartition:
    """Equal-population SFC partition of space into ``num_shards`` spans.

    Built from a position snapshot; afterwards :meth:`owner_of` and
    :meth:`members` are pure queries against the frozen geometry and
    cuts.
    """

    def __init__(self, positions, radius: float, num_shards: int,
                 curve: str = "morton"):
        positions = np.asarray(positions, dtype=np.float64)
        self.num_shards = int(num_shards)
        self.curve = curve
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if radius <= 0:
            raise ValueError("interaction radius must be positive")
        self.cell_len = float(radius)
        if len(positions) == 0:
            self.mins = np.zeros(3)
            self.dims = np.ones(3, dtype=np.int64)
        else:
            self.mins = positions.min(axis=0) - 1e-9
            maxs = positions.max(axis=0)
            self.dims = np.maximum(
                np.ceil((maxs - self.mins) / self.cell_len).astype(np.int64),
                1,
            )
        #: Hilbert order: enough bits for the largest frozen dimension.
        self._order_bits = max(int(np.max(self.dims) - 1).bit_length(), 1)
        keys = self._keys(self.cell_coords(positions))
        #: Equal-count cuts over the *snapshot's* sorted keys: shard ``s``
        #: owns keys in ``(cuts[s-1], cuts[s]]``.  searchsorted on the key
        #: alone keeps ownership a pure function of the cell.
        if len(keys):
            ranks = np.sort(keys)
            cut_idx = (np.arange(1, self.num_shards)
                       * len(ranks)) // self.num_shards
            self.cuts = ranks[np.maximum(cut_idx - 1, 0)]
        else:
            self.cuts = np.zeros(self.num_shards - 1, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Pure queries
    # ------------------------------------------------------------------ #

    def cell_coords(self, positions) -> np.ndarray:
        """Frozen-geometry integer cell coordinates, clamped in-range."""
        positions = np.asarray(positions, dtype=np.float64)
        if len(positions) == 0:
            return np.empty((0, 3), dtype=np.int64)
        coords = np.floor(
            (positions - self.mins) / self.cell_len
        ).astype(np.int64)
        return np.clip(coords, 0, self.dims - 1)

    def _keys(self, coords: np.ndarray) -> np.ndarray:
        """SFC rank of each cell coordinate triple."""
        if len(coords) == 0:
            return np.empty(0, dtype=np.int64)
        if self.curve == "hilbert":
            return hilbert_encode_nd(coords, self._order_bits).astype(
                np.int64
            )
        return morton_encode_3d(
            coords[:, 0], coords[:, 1], coords[:, 2]
        ).astype(np.int64)

    def _owner_of_coords(self, coords: np.ndarray) -> np.ndarray:
        return np.searchsorted(self.cuts, self._keys(coords), side="left")

    def owner_of(self, positions) -> np.ndarray:
        """Owning shard index per position (``int64``, in ``[0, shards)``)."""
        return self._owner_of_coords(self.cell_coords(positions))

    def members(self, positions, halo_width: float):
        """Per-shard ``(owned_mask, ghost_mask)`` boolean arrays.

        Shard ``s``'s ghosts are every agent it does not own whose cell
        stencil (Chebyshev radius ``floor(halo_width / cell_len) + 1``)
        touches a cell owned by ``s``.  Two agents within ``halo_width``
        have cell coordinates within that stencil radius per axis (floor
        and clamp are both non-expansive), so every true interaction
        partner of an owned agent is either owned or ghosted — the halo
        is a superset of the exact ``interaction_radius + skin`` ring.
        """
        positions = np.asarray(positions, dtype=np.float64)
        n = len(positions)
        coords = self.cell_coords(positions)
        owner = self._owner_of_coords(coords)
        owned = [owner == s for s in range(self.num_shards)]
        ghost = [np.zeros(n, dtype=bool) for _ in range(self.num_shards)]
        if n == 0 or self.num_shards == 1:
            return owned, ghost
        reach = int(halo_width // self.cell_len) + 1
        span = np.arange(-reach, reach + 1, dtype=np.int64)
        offsets = np.stack(
            np.meshgrid(span, span, span, indexing="ij"), axis=-1
        ).reshape(-1, 3)
        for off in offsets:
            if not off.any():
                continue
            shifted = np.clip(coords + off, 0, self.dims - 1)
            neighbor_owner = self._owner_of_coords(shifted)
            differs = neighbor_owner != owner
            if not differs.any():
                continue
            idx = np.flatnonzero(differs)
            for s in np.unique(neighbor_owner[idx]):
                ghost[s][idx[neighbor_owner[idx] == s]] = True
        return owned, ghost
