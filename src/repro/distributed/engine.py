"""The distributed stepper: halo exchange + node-local mechanics.

Each step executes the hybrid MPI/OpenMP pattern the paper's conclusion
sketches:

1. **Halo exchange** — every node receives copies of remote agents within
   one interaction radius of its slab (communication time from the
   cluster's network model; two messages per internal cut plane).
2. **Node-local iteration** — each node rebuilds its own uniform grid over
   local + ghost agents and computes collision forces and displacements
   for its *local* agents.  Because the halo width equals the interaction
   radius, every local agent sees exactly the neighborhood it would see
   in a shared-memory run: the distributed result is bit-identical to the
   single-node engine's.
3. **Migration** — agents whose displacement crossed a cut plane simply
   change owners (ownership is positional); cut planes are periodically
   re-balanced to population percentiles.

Node-local compute cost is charged to a per-node virtual machine (OpenMP
inside the node); the step's virtual time is the slowest node's compute
plus its communication — the quantity the scaling study plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.force import InteractionForce
from repro.core.scheduler import DISPLACEMENT_OPS
from repro.parallel.backend import MOVE_EPSILON
from repro.distributed.cluster import ClusterSpec
from repro.distributed.decomposition import SlabDecomposition
from repro.env.uniform_grid import UniformGridEnvironment
from repro.parallel.machine import Machine, SchedulePolicy, make_blocks

__all__ = ["DistributedEngine", "StepReport"]

#: Bytes sent per ghost agent (position + diameter + uid + flags).
GHOST_BYTES = 48


@dataclass
class StepReport:
    """Per-step timing of the distributed engine."""

    compute_seconds_per_node: np.ndarray
    comm_seconds_per_node: np.ndarray
    ghosts_per_node: np.ndarray
    migrations: int

    @property
    def step_seconds(self) -> float:
        """Slowest node determines the step (synchronous stepping)."""
        return float(np.max(self.compute_seconds_per_node + self.comm_seconds_per_node))


class DistributedEngine:
    """Synchronous distributed mechanics over a slab decomposition."""

    def __init__(
        self,
        positions: np.ndarray,
        diameters,
        cluster: ClusterSpec,
        interaction_radius: float | None = None,
        time_step: float = 0.01,
        max_displacement: float = 3.0,
        rebalance_frequency: int = 20,
        force: InteractionForce | None = None,
        motility=None,
        decomposition=None,
        registry=None,
    ):
        self.positions = np.array(positions, dtype=np.float64)
        n = len(self.positions)
        self.diameters = np.broadcast_to(
            np.asarray(diameters, dtype=np.float64), (n,)
        ).copy()
        self.cluster = cluster
        self.time_step = time_step
        self.max_displacement = max_displacement
        self.rebalance_frequency = rebalance_frequency
        self.force = force or InteractionForce()
        #: Optional partition-invariant random motion (BrownianMotion).
        self.motility = motility
        #: Stable agent identities (counter-based randomness keys).
        self.uids = np.arange(n, dtype=np.int64)
        self._radius = interaction_radius
        if decomposition is not None:
            if decomposition.num_nodes != cluster.num_nodes:
                raise ValueError("decomposition nodes != cluster nodes")
            self.decomposition = decomposition
        else:
            self.decomposition = SlabDecomposition(cluster.num_nodes, self.positions)
        self.iteration = 0
        # Step timings live in a MetricsRegistry (the same ``dist:*``
        # namespace the real distributed backend uses) rather than
        # ad-hoc engine attributes, so ``python -m repro trace`` and any
        # obs consumer can read them; the ``total_*`` properties below
        # keep the historical attribute API.
        if registry is None:
            from repro.obs.core import MetricsRegistry

            registry = MetricsRegistry()
        self.registry = registry
        self._virtual_s = registry.counter("dist:virtual_seconds")
        self._comm_s = registry.counter("dist:comm_seconds")
        self._compute_s = registry.counter("dist:compute_seconds")
        self._ghosts = registry.counter("dist:halo_agents")
        self._halo_bytes = registry.counter("dist:halo_bytes")
        self._migrations = registry.counter("dist:migrations")
        registry.gauge("dist:shards").set(cluster.num_nodes)
        self.reports: list[StepReport] = []
        self._machines = [
            Machine(cluster.node_spec, num_threads=cluster.threads_per_node)
            for _ in range(cluster.num_nodes)
        ]
        self._envs = [UniformGridEnvironment() for _ in range(cluster.num_nodes)]

    # ------------------------------------------------------------------ #

    @property
    def num_agents(self) -> int:
        return len(self.positions)

    @property
    def total_virtual_seconds(self) -> float:
        """Accumulated slowest-node step seconds (``dist:virtual_seconds``)."""
        return float(self._virtual_s.value)

    @property
    def total_comm_seconds(self) -> float:
        """Accumulated slowest-node comm seconds (``dist:comm_seconds``)."""
        return float(self._comm_s.value)

    @property
    def total_compute_seconds(self) -> float:
        """Accumulated slowest-node compute seconds
        (``dist:compute_seconds``)."""
        return float(self._compute_s.value)

    def interaction_radius(self) -> float:
        """Fixed radius override or the largest agent diameter."""
        if self._radius is not None:
            return self._radius
        return float(self.diameters.max()) if len(self.diameters) else 1.0

    # ------------------------------------------------------------------ #

    def step(self, iterations: int = 1) -> StepReport:
        """Advance the simulation; returns the last step's report."""
        report = None
        for _ in range(iterations):
            report = self._step_once()
        return report

    def _step_once(self) -> StepReport:
        cluster = self.cluster
        nn = cluster.num_nodes
        radius = self.interaction_radius()
        decomp = self.decomposition
        owners_before = decomp.owner_of(self.positions)

        disp = np.zeros_like(self.positions)
        compute_s = np.zeros(nn)
        comm_s = np.zeros(nn)
        ghosts = np.zeros(nn, dtype=np.int64)

        for node in range(nn):
            local = np.flatnonzero(owners_before == node)
            halo = decomp.halo_indices(self.positions, node, radius)
            ghosts[node] = len(halo)
            # Halo exchange: one message per neighboring node in each
            # direction; receive ghosts, send own boundary layer (equal
            # size by symmetry of the window).
            messages = int(len(np.unique(owners_before[halo]))) if len(halo) else (
                1 if nn > 1 else 0
            )
            comm_s[node] = 2 * messages * cluster.network_latency_s + (
                2 * len(halo) * GHOST_BYTES
                / cluster.network_bandwidth_bytes_per_s
            )

            if len(local) == 0:
                continue
            combined = np.concatenate([local, halo])
            pos_c = self.positions[combined]
            dia_c = self.diameters[combined]
            env = self._envs[node]
            build = env.update(pos_c, radius)
            indptr, indices = env.neighbor_csr()
            # Forces for the local agents only (the first len(local) rows).
            active = np.zeros(len(combined), dtype=bool)
            active[: len(local)] = True
            res = self.force.compute(pos_c, dia_c, indptr, indices, active)
            d = res.net_force[: len(local)] * self.time_step
            norm = np.linalg.norm(d, axis=1)
            too_far = norm > self.max_displacement
            if np.any(too_far):
                d[too_far] *= (self.max_displacement / norm[too_far])[:, None]
            disp[local] = d

            # Node-local cost: grid build + pair work on the node machine.
            m = self._machines[node]
            before = m.cycles
            cm = m.cost_model
            counts = np.diff(indptr)[: len(local)]
            per_agent = (
                cm.compute_cycles(
                    counts * InteractionForce.OPS_PER_PAIR + DISPLACEMENT_OPS
                )
                + counts * cm.spec.l2_latency
                + cm.stream_cycles(GHOST_BYTES)
            )
            blocks = make_blocks(
                per_agent, counts * cm.spec.l2_latency, domain=0,
                block_size=max(8, len(local) // (m.num_threads * 8) or 8),
            )
            m.run_parallel("mechanics", blocks, SchedulePolicy.NUMA_AWARE)
            if build.per_item_cycles is not None:
                m.run_parallel(
                    "build",
                    make_blocks(build.per_item_cycles, block_size=256),
                    SchedulePolicy.NUMA_AWARE,
                )
            compute_s[node] = cm.spec.cycles_to_seconds(m.cycles - before)

        if self.motility is not None:
            # Counter-based per-agent randomness: identical regardless of
            # which node computes the agent (see repro.distributed.motility).
            disp += self.motility.displacements(
                self.uids, self.iteration, self.time_step
            )
        moved = np.linalg.norm(disp, axis=1) > MOVE_EPSILON
        self.positions[moved] += disp[moved]

        owners_after = decomp.owner_of(self.positions)
        migrations = int(np.sum(owners_after != owners_before))
        # Migration traffic piggybacks on the halo exchange of the next
        # step; charge its bandwidth to the sending nodes.
        if migrations:
            migrating = np.flatnonzero(owners_after != owners_before)
            per_node = np.bincount(owners_before[migrating], minlength=nn)
            comm_s += per_node * GHOST_BYTES / cluster.network_bandwidth_bytes_per_s

        self.iteration += 1
        if self.rebalance_frequency and self.iteration % self.rebalance_frequency == 0:
            decomp.rebalance(self.positions)

        report = StepReport(compute_s, comm_s, ghosts, migrations)
        self.reports.append(report)
        self._virtual_s.inc(report.step_seconds)
        self._comm_s.inc(float(np.max(comm_s)))
        self._compute_s.inc(float(np.max(compute_s)))
        self._ghosts.inc(int(ghosts.sum()))
        self._halo_bytes.inc(int(ghosts.sum()) * GHOST_BYTES)
        self._migrations.inc(migrations)
        return report
