"""Distributed simulation engine (the paper's §8 future work).

The paper closes with: *"Our performance optimizations ... are an
important stepping stone towards a distributed simulation engine with a
hybrid MPI/OpenMP design. Ongoing work focuses on realizing this
distributed simulation engine capable of dividing the computation among
multiple nodes."*  This subpackage builds that engine on the same
simulated substrate used for the single-node reproduction:

- :mod:`repro.distributed.cluster` — cluster description: N nodes, each a
  :class:`~repro.parallel.topology.MachineSpec`, joined by a network with
  latency and bandwidth (the MPI fabric).
- :mod:`repro.distributed.decomposition` — 1-D spatial domain
  decomposition with ghost (halo) regions one interaction radius wide,
  plus load-rebalancing of the cut planes.
- :mod:`repro.distributed.engine` — the distributed stepper: halo
  exchange, node-local mechanics on local+ghost agents, migration of
  agents that crossed a cut plane.  Computation is *real* (the global
  result equals the shared-memory engine's); node-local compute time
  comes from per-node virtual machines and communication time from the
  network model, so scaling studies across node counts are possible.

Beyond the virtual engine, the subpackage now hosts the **real**
distributed execution backend (``Param.execution_backend =
"distributed"``), which runs spatial shards as OS processes:

- :mod:`repro.distributed.partition` — SFC-based equal-population
  spatial partition with frozen cell geometry.
- :mod:`repro.distributed.delta` — delta-encoded agent serialization
  (per-column dirty masks against the last exchanged epoch).
- :mod:`repro.distributed.transport` — pluggable host↔shard transports
  (pipe / shm / socket framing stub).
- :mod:`repro.distributed.shard_backend` — the halo-exchange execution
  backend itself, bitwise identical to serial
  (``verify.replay.distributed_equivalence``).
"""

from repro.distributed.cluster import ClusterSpec
from repro.distributed.decomposition import GridDecomposition, SlabDecomposition
from repro.distributed.delta import apply_delta, encode_delta
from repro.distributed.engine import DistributedEngine
from repro.distributed.motility import BrownianMotion
from repro.distributed.partition import SpatialPartition
from repro.distributed.shard_backend import DistributedBackend
from repro.distributed.transport import make_transport

__all__ = [
    "ClusterSpec",
    "SlabDecomposition",
    "GridDecomposition",
    "DistributedEngine",
    "BrownianMotion",
    "SpatialPartition",
    "DistributedBackend",
    "encode_delta",
    "apply_delta",
    "make_transport",
]
