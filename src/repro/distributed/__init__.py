"""Distributed simulation engine (the paper's §8 future work).

The paper closes with: *"Our performance optimizations ... are an
important stepping stone towards a distributed simulation engine with a
hybrid MPI/OpenMP design. Ongoing work focuses on realizing this
distributed simulation engine capable of dividing the computation among
multiple nodes."*  This subpackage builds that engine on the same
simulated substrate used for the single-node reproduction:

- :mod:`repro.distributed.cluster` — cluster description: N nodes, each a
  :class:`~repro.parallel.topology.MachineSpec`, joined by a network with
  latency and bandwidth (the MPI fabric).
- :mod:`repro.distributed.decomposition` — 1-D spatial domain
  decomposition with ghost (halo) regions one interaction radius wide,
  plus load-rebalancing of the cut planes.
- :mod:`repro.distributed.engine` — the distributed stepper: halo
  exchange, node-local mechanics on local+ghost agents, migration of
  agents that crossed a cut plane.  Computation is *real* (the global
  result equals the shared-memory engine's); node-local compute time
  comes from per-node virtual machines and communication time from the
  network model, so scaling studies across node counts are possible.
"""

from repro.distributed.cluster import ClusterSpec
from repro.distributed.decomposition import GridDecomposition, SlabDecomposition
from repro.distributed.engine import DistributedEngine
from repro.distributed.motility import BrownianMotion

__all__ = [
    "ClusterSpec",
    "SlabDecomposition",
    "GridDecomposition",
    "DistributedEngine",
    "BrownianMotion",
]
