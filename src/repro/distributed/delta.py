"""Delta-encoded agent serialization for inter-shard traffic.

TeraAgent (PAPERS.md) observes that most of a shard's halo/migration
payload is unchanged between exchanges, so it serializes *deltas*
against the last exchanged epoch.  This module implements that wire
format for the distributed execution backend
(:mod:`repro.distributed.shard_backend`):

- membership is a sorted, unique ``int64`` id array (global agent
  indices on the host side);
- per column, a **dirty mask** is computed against the baseline rows the
  receiver is known to hold (bitwise ``!=`` reduced over the row axes —
  NaNs compare unequal to themselves and therefore always re-ship, which
  errs on the side of correctness);
- the payload ships only rows that are *new to the membership* or dirty
  in at least one column; the receiver re-indexes the rows it keeps from
  its previous membership with two ``searchsorted`` passes.

The encoding is bytes-level (struct headers + ``ndarray.tobytes``): no
pickle is involved in the payload, so the format is transport- and
version-stable and safe to push through the socket transport stub.

:func:`encode_delta` / :func:`apply_delta` are pure functions over
``(ids, columns)`` pairs, which is what the hypothesis round-trip suite
(``tests/test_distributed_delta.py``) exercises: for any baseline and
any current state, ``apply_delta(encode_delta(...))`` must equal a full
copy.
"""

from __future__ import annotations

import struct

import numpy as np

__all__ = [
    "DeltaFormatError",
    "dirty_rows",
    "encode_delta",
    "apply_delta",
]

_MAGIC = b"RDL1"
_FLAG_FULL = 1

#: Header: magic, flags (u16), n_cols (u16), n_ids (u64), n_send (u64).
_HEADER = struct.Struct("<4sHHQQ")
#: Per-column prelude: name length (u16), dtype-str length (u16),
#: ndim (u8) — followed by name, dtype str, ndim u64 dims, payload.
_COLUMN = struct.Struct("<HHB")


class DeltaFormatError(ValueError):
    """A delta payload is malformed or inconsistent with the receiver's
    baseline (missing rows, unknown magic, truncated buffer)."""


def _check_ids(ids: np.ndarray) -> np.ndarray:
    ids = np.asarray(ids, dtype=np.int64)
    if ids.ndim != 1:
        raise DeltaFormatError("membership ids must be a 1-D int64 array")
    if len(ids) > 1 and not np.all(np.diff(ids) > 0):
        raise DeltaFormatError("membership ids must be sorted and unique")
    return ids


def dirty_rows(current: np.ndarray, baseline: np.ndarray) -> np.ndarray:
    """Boolean mask of rows whose bytes differ between two row-aligned
    arrays (any inequality over the trailing axes; NaN counts as dirty)."""
    neq = current != baseline
    if neq.ndim > 1:
        neq = neq.any(axis=tuple(range(1, neq.ndim)))
    return neq


def encode_delta(
    new_ids,
    new_columns: dict,
    old_ids=None,
    baseline_columns: dict | None = None,
) -> bytes:
    """Serialize membership + rows the receiver is missing or holds stale.

    ``new_columns`` maps column names to arrays row-aligned with
    ``new_ids`` (row ``i`` belongs to id ``new_ids[i]``); likewise
    ``baseline_columns`` with ``old_ids`` — the exact rows the receiver
    currently holds.  With no baseline (``old_ids is None``) the payload
    is a **full** sync carrying every row.
    """
    new_ids = _check_ids(new_ids)
    n_new = len(new_ids)
    if old_ids is None or baseline_columns is None:
        send_pos = np.arange(n_new, dtype=np.int64)
        flags = _FLAG_FULL
    else:
        old_ids = _check_ids(old_ids)
        _common, pos_new, pos_old = np.intersect1d(
            new_ids, old_ids, assume_unique=True, return_indices=True
        )
        fresh = np.ones(n_new, dtype=bool)
        fresh[pos_new] = False
        dirty = np.zeros(n_new, dtype=bool)
        for name, arr in new_columns.items():
            base = baseline_columns[name]
            dirty[pos_new] |= dirty_rows(
                np.asarray(arr)[pos_new], np.asarray(base)[pos_old]
            )
        send_pos = np.flatnonzero(fresh | dirty)
        flags = 0

    parts = [
        _HEADER.pack(_MAGIC, flags, len(new_columns), n_new, len(send_pos)),
        new_ids.tobytes(),
    ]
    if not (flags & _FLAG_FULL):
        parts.append(send_pos.tobytes())
    for name, arr in new_columns.items():
        arr = np.ascontiguousarray(arr)
        if len(arr) != n_new:
            raise DeltaFormatError(
                f"column {name!r} has {len(arr)} rows, membership has "
                f"{n_new}"
            )
        name_b = name.encode("utf-8")
        dtype_b = arr.dtype.str.encode("ascii")
        row_shape = arr.shape[1:]
        parts.append(_COLUMN.pack(len(name_b), len(dtype_b), len(row_shape)))
        parts.append(name_b)
        parts.append(dtype_b)
        parts.append(struct.pack(f"<{len(row_shape)}Q", *row_shape))
        parts.append(np.ascontiguousarray(arr[send_pos]).tobytes())
    return b"".join(parts)


def apply_delta(
    blob: bytes,
    old_ids=None,
    old_columns: dict | None = None,
) -> tuple[np.ndarray, dict]:
    """Decode a payload into ``(new_ids, new_columns)``.

    Rows present in both memberships and not re-shipped are carried over
    from ``old_columns``; every other row must be covered by the payload
    (a gap raises :class:`DeltaFormatError` rather than yielding
    uninitialized agent state).
    """
    blob = memoryview(blob)
    if len(blob) < _HEADER.size:
        raise DeltaFormatError("truncated delta header")
    magic, flags, n_cols, n_new, n_send = _HEADER.unpack_from(blob, 0)
    if magic != _MAGIC:
        raise DeltaFormatError(f"bad delta magic {magic!r}")
    off = _HEADER.size
    new_ids = np.frombuffer(blob, dtype=np.int64, count=n_new, offset=off)
    off += 8 * n_new
    if flags & _FLAG_FULL:
        send_pos = np.arange(n_new, dtype=np.int64)
    else:
        send_pos = np.frombuffer(blob, dtype=np.int64, count=n_send,
                                 offset=off)
        off += 8 * n_send
    new_ids = _check_ids(new_ids.copy())

    if old_ids is not None and old_columns is not None:
        old_ids = _check_ids(old_ids)
        _common, pos_new, pos_old = np.intersect1d(
            new_ids, old_ids, assume_unique=True, return_indices=True
        )
    else:
        pos_new = pos_old = np.empty(0, dtype=np.int64)

    covered = np.zeros(n_new, dtype=bool)
    covered[pos_new] = True
    covered[send_pos] = True
    if not covered.all():
        raise DeltaFormatError(
            f"delta leaves {int((~covered).sum())} membership rows "
            "uncovered (baseline/payload mismatch)"
        )

    new_columns = {}
    for _ in range(n_cols):
        if len(blob) - off < _COLUMN.size:
            raise DeltaFormatError("truncated column prelude")
        name_len, dtype_len, ndim = _COLUMN.unpack_from(blob, off)
        off += _COLUMN.size
        name = bytes(blob[off:off + name_len]).decode("utf-8")
        off += name_len
        dtype = np.dtype(bytes(blob[off:off + dtype_len]).decode("ascii"))
        off += dtype_len
        row_shape = struct.unpack_from(f"<{ndim}Q", blob, off)
        off += 8 * ndim
        row_items = int(np.prod(row_shape, dtype=np.int64)) if ndim else 1
        count = n_send * row_items
        nbytes = count * dtype.itemsize
        if len(blob) - off < nbytes:
            raise DeltaFormatError(f"truncated payload for column {name!r}")
        sent = np.frombuffer(blob, dtype=dtype, count=count,
                             offset=off).reshape(n_send, *row_shape)
        off += nbytes
        out = np.empty((n_new, *row_shape), dtype=dtype)
        if len(pos_new):
            if name not in old_columns:
                raise DeltaFormatError(
                    f"baseline is missing column {name!r}"
                )
            out[pos_new] = np.asarray(old_columns[name])[pos_old]
        out[send_pos] = sent
        new_columns[name] = out
    return new_ids, new_columns
