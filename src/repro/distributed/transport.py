"""Pluggable inter-shard transports for the distributed backend.

A transport is a duplex message channel between the host and one shard
process.  Messages are ``(header, payload)`` pairs: the header is a
small picklable tuple (phase name, epoch, scalars, tiny arrays as
bytes), the payload is one opaque ``bytes`` blob — the delta-encoded
agent rows of :mod:`repro.distributed.delta` or a packed arena slice
(:meth:`repro.core.arena.SoAArena.pack_rows`).  Keeping the bulk data
out of the header means every transport moves agent state as one
contiguous buffer.

Three implementations:

- :class:`PipeTransport` (default): a ``multiprocessing.Pipe`` — the
  same primitive the process backend's ack channel uses; header and
  payload ride the connection together.
- :class:`ShmTransport`: control messages over a pipe, payloads through
  a persistent per-direction ``multiprocessing.shared_memory`` segment
  (grown amortized-doubling, reused across epochs).  The strict
  request/reply alternation of the two-phase step protocol guarantees a
  segment is consumed before the sender reuses it.
- :class:`SocketTransport`: length-prefixed frames over a stream
  socket — the byte-level framing a real multi-node deployment would
  speak over TCP.  By default both ends are paired with
  ``socket.socketpair()`` (the single-box stub); with
  ``Param.distributed_endpoint`` set to ``"host:port"`` the pair is
  established through a real TCP listener bound at that address, so
  the bind host is configurable (first step toward multi-node, where
  the connect side would run on another machine).

``make_transport(kind, endpoint="")`` returns a connected
``(host_end, shard_end)`` pair; with the fork start method the shard
end is inherited by the worker process as-is.
"""

from __future__ import annotations

import pickle
import socket
import struct

import multiprocessing as mp

__all__ = [
    "TransportError",
    "TransportEndpoint",
    "PipeTransport",
    "ShmTransport",
    "SocketTransport",
    "TRANSPORTS",
    "make_transport",
]

#: Seconds an endpoint waits for a peer message before declaring the
#: link dead (mirrors the process backend's ``ACK_TIMEOUT_S``).
RECV_TIMEOUT_S = 120.0

_LEN = struct.Struct("<QQ")


class TransportError(RuntimeError):
    """The peer went away, timed out, or sent a malformed frame."""


class TransportEndpoint:
    """One side of a duplex shard link."""

    kind = "base"

    def send(self, header, payload: bytes = b"") -> None:
        """Ship ``(header, payload)`` to the peer; raise
        :class:`TransportError` on a dead link."""
        raise NotImplementedError

    def recv(self, timeout: float = RECV_TIMEOUT_S):
        """Return ``(header, payload)`` or raise :class:`TransportError`."""
        raise NotImplementedError

    def close(self) -> None:
        """Release OS resources; idempotent."""


class PipeTransport(TransportEndpoint):
    """``multiprocessing.Pipe`` endpoint (header + payload in one send)."""

    kind = "pipe"

    def __init__(self, conn):
        self._conn = conn

    def send(self, header, payload: bytes = b"") -> None:
        """Pickle the header and payload through the duplex pipe."""
        try:
            self._conn.send((header, bytes(payload)))
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise TransportError(f"pipe send failed: {exc}") from exc

    def recv(self, timeout: float = RECV_TIMEOUT_S):
        try:
            if not self._conn.poll(timeout):
                raise TransportError(
                    f"pipe recv timed out after {timeout:.0f}s"
                )
            return self._conn.recv()
        except (EOFError, OSError) as exc:
            raise TransportError(f"pipe recv failed: {exc}") from exc

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - double close
            pass


class ShmTransport(PipeTransport):
    """Pipe control channel + shared-memory payload segment.

    The payload bytes never traverse the pipe: the sender copies them
    into its direction's segment (reallocated with a fresh name when too
    small) and ships ``(segment_name, nbytes)`` in the control frame;
    the receiver attaches the segment once and copies out.  For
    process-local shards this turns the payload hop into two memcpys
    regardless of transport buffering.
    """

    kind = "shm"

    def __init__(self, conn):
        super().__init__(conn)
        self._seg = None          # this end's send segment
        self._attached = {}       # name -> attached segment (recv side)

    def _ensure_segment(self, nbytes: int):
        from multiprocessing import shared_memory

        if self._seg is None or self._seg.size < nbytes:
            if self._seg is not None:
                old = self._seg
                old.close()
                old.unlink()
            size = max(int(nbytes), 1 << 16)
            self._seg = shared_memory.SharedMemory(create=True, size=size)
        return self._seg

    def send(self, header, payload: bytes = b"") -> None:
        """Place the payload in a shared-memory segment and doorbell the
        peer with its name (header travels over the control pipe)."""
        payload = bytes(payload)
        ref = None
        if payload:
            seg = self._ensure_segment(len(payload))
            seg.buf[: len(payload)] = payload
            ref = (seg.name, len(payload))
        try:
            self._conn.send((header, ref))
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise TransportError(f"shm send failed: {exc}") from exc

    def recv(self, timeout: float = RECV_TIMEOUT_S):
        header, ref = super().recv(timeout)
        if ref is None:
            return header, b""
        from multiprocessing import shared_memory

        name, nbytes = ref
        seg = self._attached.get(name)
        if seg is None:
            try:
                seg = shared_memory.SharedMemory(name=name)
            except FileNotFoundError as exc:
                raise TransportError(
                    f"payload segment {name!r} vanished"
                ) from exc
            self._attached[name] = seg
        return header, bytes(seg.buf[:nbytes])

    def close(self) -> None:
        super().close()
        for seg in self._attached.values():
            try:
                seg.close()
            except OSError:  # pragma: no cover - already gone
                pass
        self._attached = {}
        if self._seg is not None:
            try:
                self._seg.close()
                self._seg.unlink()
            except OSError:  # pragma: no cover - already unlinked
                pass
            self._seg = None


class SocketTransport(TransportEndpoint):
    """Length-prefixed frames over a stream socket (multi-node framing).

    One frame is ``<header_len u64><payload_len u64><pickled header>
    <payload bytes>`` — nothing host-specific, so the same codec would
    speak across machines; the in-tree constructor pairs both ends with
    ``socket.socketpair()``.
    """

    kind = "socket"

    def __init__(self, sock: socket.socket):
        self._sock = sock

    def send(self, header, payload: bytes = b"") -> None:
        """Write two length-prefixed frames (header blob, payload) to the
        TCP socket."""
        blob = pickle.dumps(header)
        payload = bytes(payload)
        try:
            self._sock.sendall(
                _LEN.pack(len(blob), len(payload)) + blob + payload
            )
        except OSError as exc:
            raise TransportError(f"socket send failed: {exc}") from exc

    def _recv_exact(self, nbytes: int) -> bytes:
        chunks = []
        remaining = nbytes
        while remaining:
            chunk = self._sock.recv(min(remaining, 1 << 20))
            if not chunk:
                raise TransportError("socket peer closed mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self, timeout: float = RECV_TIMEOUT_S):
        self._sock.settimeout(timeout)
        try:
            header_len, payload_len = _LEN.unpack(
                self._recv_exact(_LEN.size)
            )
            header = pickle.loads(self._recv_exact(header_len))
            payload = self._recv_exact(payload_len) if payload_len else b""
        except socket.timeout as exc:
            raise TransportError(
                f"socket recv timed out after {timeout:.0f}s"
            ) from exc
        except OSError as exc:
            raise TransportError(f"socket recv failed: {exc}") from exc
        return header, payload

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - double close
            pass


def _pipe_pair(cls):
    ctx = mp.get_context(
        "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    )
    a, b = ctx.Pipe(duplex=True)
    return cls(a), cls(b)


def _socket_pair(endpoint: str = ""):
    if not endpoint:
        a, b = socket.socketpair()
        return SocketTransport(a), SocketTransport(b)
    host, _, port_text = endpoint.rpartition(":")
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((host, int(port_text)))
        except OSError as exc:
            raise TransportError(
                f"cannot bind socket transport at {endpoint!r}: {exc}"
            ) from exc
        listener.listen(1)
        # Connect-then-accept against our own listener: both ends live
        # in this process (the shard end is inherited across fork), but
        # the link is a real TCP connection at a configurable bind
        # address — the multi-node shape, minus the remote connect.
        b = socket.create_connection(listener.getsockname(), timeout=10.0)
        a, _peer = listener.accept()
    finally:
        listener.close()
    a.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    b.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return SocketTransport(a), SocketTransport(b)


TRANSPORTS = {
    "pipe": lambda endpoint="": _pipe_pair(PipeTransport),
    "shm": lambda endpoint="": _pipe_pair(ShmTransport),
    "socket": _socket_pair,
}


def make_transport(kind: str, endpoint: str = ""):
    """Connected ``(host_end, shard_end)`` pair of the requested kind.

    ``endpoint`` (``"host:port"``) only affects the socket transport:
    it selects the TCP bind address (port 0 = ephemeral); the pipe and
    shm transports are process-local and ignore it.
    """
    try:
        factory = TRANSPORTS[kind]
    except KeyError:
        raise ValueError(
            f"unknown distributed transport {kind!r}; choose one of "
            f"{', '.join(sorted(TRANSPORTS))}"
        ) from None
    return factory(endpoint)
