"""1-D spatial domain decomposition with halo regions.

The simulation space is cut into slabs along the x axis; every node owns
the agents inside its slab.  Agents within one interaction radius of a
cut plane are *halo* (ghost) agents for the adjacent node: their state is
sent over before each step so node-local force calculations see exactly
the same neighborhoods as a shared-memory run.

Cut planes start at population percentiles and can be re-balanced (the
distributed analogue of the §4.2 NUMA balancing).
"""

from __future__ import annotations

import numpy as np

__all__ = ["SlabDecomposition", "GridDecomposition"]


class SlabDecomposition:
    """Axis-aligned slab decomposition along x."""

    def __init__(self, num_nodes: int, positions: np.ndarray):
        if num_nodes < 1:
            raise ValueError("need at least one node")
        self.num_nodes = num_nodes
        self.cuts = self._balanced_cuts(positions)

    def _balanced_cuts(self, positions: np.ndarray) -> np.ndarray:
        """Cut planes at population percentiles of x (equal agent shares)."""
        if len(positions) == 0 or self.num_nodes == 1:
            return np.zeros(0)
        q = np.linspace(0, 100, self.num_nodes + 1)[1:-1]
        return np.percentile(positions[:, 0], q)

    def rebalance(self, positions: np.ndarray) -> None:
        """Move the cut planes back to population percentiles."""
        self.cuts = self._balanced_cuts(positions)

    def owner_of(self, positions: np.ndarray) -> np.ndarray:
        """Node owning each position."""
        if self.num_nodes == 1 or len(positions) == 0:
            return np.zeros(len(positions), dtype=np.int64)
        return np.searchsorted(self.cuts, positions[:, 0], side="right")

    def local_indices(self, positions: np.ndarray, node: int) -> np.ndarray:
        """Indices of the agents owned by ``node``."""
        return np.flatnonzero(self.owner_of(positions) == node)

    def halo_indices(self, positions: np.ndarray, node: int, radius: float) -> np.ndarray:
        """Indices of *remote* agents within ``radius`` of node's slab.

        These are the ghosts the node must receive before computing local
        forces.
        """
        owner = self.owner_of(positions)
        x = positions[:, 0]
        ghost = np.zeros(len(positions), dtype=bool)
        if node > 0:
            lo = self.cuts[node - 1]
            ghost |= (owner != node) & (x >= lo - radius) & (x < lo)
        if node < self.num_nodes - 1:
            hi = self.cuts[node]
            ghost |= (owner != node) & (x <= hi + radius) & (x >= hi)
        return np.flatnonzero(ghost)

    def node_loads(self, positions: np.ndarray) -> np.ndarray:
        """Agents per node (imbalance diagnostics)."""
        return np.bincount(self.owner_of(positions), minlength=self.num_nodes)


class GridDecomposition:
    """Rectilinear 2-D decomposition: ``nx x ny`` columns/rows of cells.

    Cuts along x at population percentiles, then along y *within each
    column* — the classic rectilinear partition.  At high node counts its
    halo surface grows like sqrt(nodes) instead of the slab layout's
    linear growth, so communication scales better (the reason production
    codes abandon 1-D decompositions).
    """

    def __init__(self, nx: int, ny: int, positions: np.ndarray):
        if nx < 1 or ny < 1:
            raise ValueError("need at least a 1x1 grid of nodes")
        self.nx = nx
        self.ny = ny
        self.num_nodes = nx * ny
        self.x_cuts = np.zeros(0)
        self.y_cuts = np.zeros((nx, max(ny - 1, 0)))
        self.rebalance(positions)

    def rebalance(self, positions: np.ndarray) -> None:
        """Move all cut planes back to population percentiles."""
        if len(positions) == 0:
            self.x_cuts = np.zeros(max(self.nx - 1, 0))
            self.y_cuts = np.zeros((self.nx, max(self.ny - 1, 0)))
            return
        if self.nx > 1:
            q = np.linspace(0, 100, self.nx + 1)[1:-1]
            self.x_cuts = np.percentile(positions[:, 0], q)
        else:
            self.x_cuts = np.zeros(0)
        cols = (
            np.searchsorted(self.x_cuts, positions[:, 0], side="right")
            if self.nx > 1
            else np.zeros(len(positions), dtype=np.int64)
        )
        self.y_cuts = np.zeros((self.nx, max(self.ny - 1, 0)))
        if self.ny > 1:
            q = np.linspace(0, 100, self.ny + 1)[1:-1]
            for c in range(self.nx):
                ys = positions[cols == c, 1]
                if len(ys):
                    self.y_cuts[c] = np.percentile(ys, q)

    def owner_of(self, positions: np.ndarray) -> np.ndarray:
        """Node owning each position (column-major cell index)."""
        if len(positions) == 0:
            return np.zeros(0, dtype=np.int64)
        cols = (
            np.searchsorted(self.x_cuts, positions[:, 0], side="right")
            if self.nx > 1
            else np.zeros(len(positions), dtype=np.int64)
        )
        rows = np.zeros(len(positions), dtype=np.int64)
        if self.ny > 1:
            for c in range(self.nx):
                sel = cols == c
                rows[sel] = np.searchsorted(
                    self.y_cuts[c], positions[sel, 1], side="right"
                )
        return cols * self.ny + rows

    def _cell_bounds(self, node: int):
        c, r = divmod(node, self.ny)
        x_lo = -np.inf if c == 0 else self.x_cuts[c - 1]
        x_hi = np.inf if c == self.nx - 1 else self.x_cuts[c]
        y_lo = -np.inf if r == 0 else self.y_cuts[c, r - 1]
        y_hi = np.inf if r == self.ny - 1 else self.y_cuts[c, r]
        return x_lo, x_hi, y_lo, y_hi

    def halo_indices(self, positions: np.ndarray, node: int, radius: float) -> np.ndarray:
        """Remote agents within ``radius`` of the node's rectangle."""
        owner = self.owner_of(positions)
        x_lo, x_hi, y_lo, y_hi = self._cell_bounds(node)
        x, y = positions[:, 0], positions[:, 1]
        inside_expanded = (
            (x >= x_lo - radius) & (x <= x_hi + radius)
            & (y >= y_lo - radius) & (y <= y_hi + radius)
        )
        return np.flatnonzero(inside_expanded & (owner != node))

    def local_indices(self, positions: np.ndarray, node: int) -> np.ndarray:
        """Indices of the agents owned by ``node``."""
        return np.flatnonzero(self.owner_of(positions) == node)

    def node_loads(self, positions: np.ndarray) -> np.ndarray:
        """Agents per node (imbalance diagnostics)."""
        return np.bincount(self.owner_of(positions), minlength=self.num_nodes)
