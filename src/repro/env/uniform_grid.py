"""BioDynaMo's optimized uniform grid environment (paper §3.1).

Design points reproduced from the paper:

- **Fixed-radius exploitation.**  The box edge equals the interaction
  radius, so all neighbors of an agent lie in the 3x3x3 cube of boxes
  around its own box.
- **Timestamped boxes.**  Every box carries a timestamp updated when an
  agent is added; a box whose timestamp differs from the grid's current
  timestamp is empty.  The build therefore never clears box arrays and
  runs in O(#agents) instead of O(#agents + #boxes) — relevant for large,
  sparsely populated simulation spaces.  We allocate box arrays with
  ``np.empty`` (i.e. uninitialized) to keep this property honest.
- **Array-based linked list.**  Agents inside a box are chained using the
  same agent indices as the ResourceManager, so the agent-sorting
  optimization (§4.2) also shortens pointer-chase distances here.  The
  batch build produces the equivalent compact form (a counting sort); the
  faithful incremental insertion path is used when agents are added one
  at a time.
- **Parallel build.**  Assigning agents to boxes is embarrassingly
  parallel; the reported :class:`BuildWork` charges per-agent cycles to a
  parallel region (unlike the serial kd-tree/octree builds).
"""

from __future__ import annotations

import numpy as np

from repro.env.environment import BuildWork, Environment

__all__ = ["UniformGridEnvironment"]

# Model constants (cycles).
_ASSIGN_CYCLES = 14.0      # compute box coords + insert into linked list
_CANDIDATE_CYCLES = 6.0    # examine one candidate during search (distance check)

_NO_AGENT = -1


class UniformGridEnvironment(Environment):
    """Uniform grid with timestamped boxes and array-based linked lists.

    :meth:`neighbor_csr` emits every row in canonical ascending-index
    order, which is what qualifies the grid for the scheduler's
    displacement-bounded neighbor cache (``supports_neighbor_cache``):
    an order-preserving re-filter of a skin-inflated build reproduces a
    fresh exact build bit for bit.
    """

    name = "uniform_grid"

    #: Rows are canonically ordered, so skin-inflated builds can be
    #: re-filtered bitwise-identically (see repro.core.scheduler).
    supports_neighbor_cache = True

    def __init__(self, box_length_factor: float = 1.0, max_boxes: int = 1 << 26):
        super().__init__()
        if box_length_factor < 1.0:
            raise ValueError("box_length_factor must be >= 1 (boxes may not be "
                             "smaller than the interaction radius)")
        self.box_length_factor = box_length_factor
        self.max_boxes = max_boxes
        self._timestamp = 0
        self._dims = np.zeros(3, dtype=np.int64)
        self._mins = np.zeros(3)
        self._box_len = 0.0
        # Box arrays are lazily (re)allocated UNINITIALIZED; timestamps
        # guarantee stale contents are never read.
        self._box_start = np.empty(0, dtype=np.int64)
        self._box_count = np.empty(0, dtype=np.int64)
        self._box_stamp = np.empty(0, dtype=np.int64)
        self._successor = np.empty(0, dtype=np.int64)
        self._order = np.empty(0, dtype=np.int64)       # agents sorted by box
        self._sorted_starts = None
        self._positions = np.empty((0, 3))
        self._box_of_agent = np.empty(0, dtype=np.int64)
        self._radius = 0.0
        self._candidates = np.empty(0, dtype=np.int64)
        self._csr: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    # Build
    # ------------------------------------------------------------------ #

    def _grid_geometry(self, positions: np.ndarray, radius: float):
        box_len = radius * self.box_length_factor
        mins = positions.min(axis=0) - 1e-9
        maxs = positions.max(axis=0)
        if not (np.all(np.isfinite(mins)) and np.all(np.isfinite(maxs))):
            raise ValueError("positions contain non-finite coordinates")
        dims = np.maximum(np.ceil((maxs - mins) / box_len).astype(np.int64), 1)
        if int(np.prod(dims)) > self.max_boxes:
            raise MemoryError(
                f"grid would need {int(np.prod(dims))} boxes (> max_boxes); "
                "increase box_length_factor or shrink the simulation space"
            )
        return mins, dims, box_len

    @staticmethod
    def _box_ids(positions, mins, dims, box_len):
        # x-fastest linearization of the box coordinates (shared by the
        # batch build and bin_positions so the two can never drift apart).
        coords = ((positions - mins) / box_len).astype(np.int64)
        coords = np.minimum(coords, dims - 1)
        return (coords[:, 2] * dims[1] + coords[:, 1]) * dims[0] + coords[:, 0]

    def bin_positions(self, positions: np.ndarray,
                      radius: float) -> tuple[np.ndarray, np.ndarray]:
        """Box id per position and grid dims for a hypothetical build.

        Pure query: bins ``positions`` with exact-``radius`` geometry
        without touching the current build.  Agent sorting (§4.2) uses
        this so its Morton keys always reflect the *current* positions at
        the *exact* interaction radius — independent of whether the live
        build is skin-inflated or several steps old (the neighbor cache).
        """
        positions = np.asarray(positions, dtype=np.float64)
        mins, dims, box_len = self._grid_geometry(positions, radius)
        return self._box_ids(positions, mins, dims, box_len), dims

    def update(self, positions: np.ndarray, radius: float) -> BuildWork:
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError("positions must have shape (n, 3)")
        if radius <= 0:
            raise ValueError("interaction radius must be positive")
        n = len(positions)
        self._positions = positions
        self._radius = radius
        self._timestamp += 1
        self._csr = None
        self._incremental = False
        if n == 0:
            self._box_of_agent = np.empty(0, dtype=np.int64)
            self._order = np.empty(0, dtype=np.int64)
            self.last_build_work = BuildWork(parallelizable=True,
                                             per_item_cycles=np.empty(0))
            return self.last_build_work

        self._mins, self._dims, self._box_len = self._grid_geometry(positions, radius)
        num_boxes = int(np.prod(self._dims))
        if len(self._box_stamp) < num_boxes:
            # Reallocate WITHOUT zeroing: the timestamp makes this safe.
            self._box_start = np.empty(num_boxes, dtype=np.int64)
            self._box_count = np.empty(num_boxes, dtype=np.int64)
            self._box_stamp = np.zeros(num_boxes, dtype=np.int64)  # one-time

        box_id = self._box_ids(positions, self._mins, self._dims, self._box_len)
        self._box_of_agent = box_id

        # Counting-sort equivalent of the parallel linked-list build: touch
        # only boxes that contain agents (O(#agents) semantics).
        order = np.argsort(box_id, kind="stable")
        sorted_boxes = box_id[order]
        run_starts = np.flatnonzero(np.diff(sorted_boxes)) + 1
        starts = np.concatenate(([0], run_starts))
        boxes_touched = sorted_boxes[starts]
        counts = np.diff(np.append(starts, n))
        self._box_start[boxes_touched] = starts
        self._box_count[boxes_touched] = counts
        self._box_stamp[boxes_touched] = self._timestamp
        self._order = order

        # Array-based linked list: successor chains within each box, using
        # ResourceManager agent indices.
        succ = np.full(n, _NO_AGENT, dtype=np.int64)
        same_box = sorted_boxes[:-1] == sorted_boxes[1:]
        succ[order[:-1][same_box]] = order[1:][same_box]
        self._successor = succ

        self.last_build_work = BuildWork(
            parallelizable=True,
            per_item_cycles=np.full(n, _ASSIGN_CYCLES),
            memory_bytes=int(len(self._box_stamp) * 20 + n * 16),
            # Each insert writes into the box array at an effectively
            # random offset; wider (sparser) environments spread these
            # writes over more memory and miss deeper cache levels.
            random_access_spread_bytes=float(num_boxes * 20),
        )
        return self.last_build_work

    # ------------------------------------------------------------------ #
    # Faithful single-agent insertion (timestamp + linked-list semantics)
    # ------------------------------------------------------------------ #

    def begin_incremental(self, lower, upper, radius: float) -> None:
        """Start an incremental build over a fixed spatial extent.

        Agents are then added one at a time with :meth:`insert_agent`,
        exactly as the paper's head-insertion linked-list build does;
        searches consolidate the chains on demand.  The batch
        :meth:`update` path produces the same neighbor sets.
        """
        if radius <= 0:
            raise ValueError("interaction radius must be positive")
        lower = np.asarray(lower, dtype=np.float64)
        upper = np.asarray(upper, dtype=np.float64)
        if np.any(upper <= lower):
            raise ValueError("upper bound must exceed lower bound")
        self._radius = radius
        self._box_len = radius * self.box_length_factor
        self._mins = lower - 1e-9
        self._dims = np.maximum(
            np.ceil((upper - self._mins) / self._box_len).astype(np.int64), 1
        )
        num_boxes = int(np.prod(self._dims))
        if num_boxes > self.max_boxes:
            raise MemoryError("grid would need too many boxes")
        if len(self._box_stamp) < num_boxes:
            self._box_start = np.empty(num_boxes, dtype=np.int64)
            self._box_count = np.empty(num_boxes, dtype=np.int64)
            self._box_stamp = np.zeros(num_boxes, dtype=np.int64)
        self._timestamp += 1
        self._inc_positions: list[np.ndarray] = []
        self._inc_boxes: list[int] = []
        self._touched: list[int] = []
        self._successor = np.empty(0, dtype=np.int64)
        self._csr = None
        self._incremental = True

    def insert_agent(self, position) -> int:
        """Insert one agent with the paper's timestamped head-insertion.

        Returns the agent's index.  Requires :meth:`begin_incremental`.
        """
        if not getattr(self, "_incremental", False):
            raise RuntimeError("call begin_incremental() first")
        position = np.asarray(position, dtype=np.float64)
        coords = ((position - self._mins) / self._box_len).astype(np.int64)
        coords = np.clip(coords, 0, self._dims - 1)
        b = int((coords[2] * self._dims[1] + coords[1]) * self._dims[0] + coords[0])
        idx = len(self._inc_positions)
        if idx >= len(self._successor):
            grown = np.full(max(2 * idx, 16), _NO_AGENT, dtype=np.int64)
            grown[: len(self._successor)] = self._successor
            self._successor = grown
        if self._box_stamp[b] != self._timestamp:
            # First agent in this box this iteration: no zeroing needed.
            self._box_stamp[b] = self._timestamp
            self._box_count[b] = 0
            self._box_start[b] = _NO_AGENT
            self._touched.append(b)
        self._successor[idx] = self._box_start[b]
        self._box_start[b] = idx
        self._box_count[b] += 1
        self._inc_positions.append(position)
        self._inc_boxes.append(b)
        self._csr = None
        return idx

    def _consolidate(self) -> None:
        """Turn the head-insertion chains into the batch search layout."""
        n = len(self._inc_positions)
        self._positions = (
            np.vstack(self._inc_positions) if n else np.empty((0, 3))
        )
        self._box_of_agent = np.asarray(self._inc_boxes, dtype=np.int64)
        order = np.empty(n, dtype=np.int64)
        pos_cursor = 0
        for b in self._touched:
            start = pos_cursor
            cur = int(self._box_start[b])
            while cur != _NO_AGENT:
                order[pos_cursor] = cur
                pos_cursor += 1
                cur = int(self._successor[cur])
            self._box_start[b] = start
            self._box_count[b] = pos_cursor - start
        self._order = order
        self._incremental = False

    def box_chain(self, box_id: int) -> list[int]:
        """Walk the linked list of one box (incremental mode only)."""
        if not getattr(self, "_incremental", False):
            raise RuntimeError("box chains exist only during incremental builds")
        if self._box_stamp[box_id] != self._timestamp:
            return []
        out = []
        cur = int(self._box_start[box_id])
        while cur != _NO_AGENT:
            out.append(cur)
            cur = int(self._successor[cur])
        return out

    def is_box_empty(self, box_id: int) -> bool:
        """Timestamp check: True if no agent was added this iteration."""
        return self._box_stamp[box_id] != self._timestamp

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #

    def neighbor_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """All-pairs fixed-radius neighbors as CSR ``(indptr, indices)``."""
        if self._csr is not None:
            return self._csr
        if getattr(self, "_incremental", False):
            self._consolidate()
        n = len(self._positions)
        if n == 0:
            self._candidates = np.empty(0, dtype=np.int64)
            self._csr = (np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64))
            return self._csr

        pos = self._positions
        dims = self._dims
        box = self._box_of_agent
        cz, rem = np.divmod(box, dims[0] * dims[1])
        cy, cx = np.divmod(rem, dims[0])
        r2 = self._radius * self._radius

        # All 27 neighbor boxes of every agent in one vectorized pass.
        d = np.array([-1, 0, 1], dtype=np.int64)
        off = np.stack(np.meshgrid(d, d, d, indexing="ij"), axis=-1).reshape(27, 3)
        nbx = cx[:, None] + off[None, :, 0]
        nby = cy[:, None] + off[None, :, 1]
        nbz = cz[:, None] + off[None, :, 2]
        valid = (
            (nbx >= 0) & (nbx < dims[0])
            & (nby >= 0) & (nby < dims[1])
            & (nbz >= 0) & (nbz < dims[2])
        )
        nbid = (nbz * dims[1] + nby) * dims[0] + nbx
        nbid[~valid] = 0  # clamped; masked out via reps below
        fresh = self._box_stamp[nbid] == self._timestamp
        reps = np.where(valid & fresh, self._box_count[nbid], 0)

        candidates = reps.sum(axis=1)
        reps_f = reps.ravel()
        total = int(candidates.sum())
        qi = np.repeat(np.arange(n, dtype=np.int64), candidates)
        # Gather the ranges [start, start+count) of each (agent, box) pair.
        csum = np.cumsum(reps_f) - reps_f
        within = np.arange(total, dtype=np.int64) - np.repeat(csum, reps_f)
        cand = self._order[np.repeat(self._box_start[nbid].ravel(), reps_f) + within]

        # Component-wise distance: avoids materializing (npairs, 3) temps
        # and the slow axis reduction.
        px, py, pz = pos[:, 0], pos[:, 1], pos[:, 2]
        dx = px[qi] - px[cand]
        dy = py[qi] - py[cand]
        dz = pz[qi] - pz[cand]
        d2 = dx * dx
        d2 += dy * dy
        d2 += dz * dz
        keep = (d2 <= r2) & (qi != cand)
        qi, cand = qi[keep], cand[keep]

        # Canonical row order: ascending neighbor index within each row.
        # The box-scan emits candidates in storage order, which depends on
        # the build's geometry; sorting makes the CSR a pure function of
        # (positions, radius), which is what lets a re-filtered superset
        # build reproduce a fresh exact build bitwise (forces sum each
        # row's pairs in CSR order via np.bincount, so row order decides
        # the float bits of the net force).
        if len(cand):
            order = np.argsort(qi * np.int64(n) + cand)
            qi, cand = qi[order], cand[order]

        # qi is sorted (ascending rows) -> CSR.
        counts = np.bincount(qi, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self._candidates = candidates
        self._csr = (indptr, cand)
        return self._csr

    def search_candidates_per_agent(self) -> np.ndarray:
        if self._csr is None:
            self.neighbor_csr()
        return self._candidates

    def search_cycles_per_agent(self) -> np.ndarray:
        """Search cost per agent in cycles (candidates times unit cost)."""
        return self.search_candidates_per_agent() * _CANDIDATE_CYCLES

    def query(self, points: np.ndarray, radius: float | None = None) -> list[np.ndarray]:
        """Agents within ``radius`` of arbitrary query points.

        Uses the current build; ``radius`` defaults to (and must not
        exceed) the build radius, since only the 3x3x3 box cube around
        each point is searched.  Returns one index array per point.

        Batched NumPy implementation; :meth:`query_scalar` is the plain
        per-point loop kept as the oracle reference — both return exactly
        the same arrays (the differential oracle enforces this).
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        m = len(points)
        if len(self._positions) == 0 or m == 0:
            return [np.empty(0, dtype=np.int64) for _ in range(m)]
        radius = self._radius if radius is None else radius
        if radius > self._radius + 1e-12:
            raise ValueError("query radius exceeds the build radius")
        coords = ((points - self._mins) / self._box_len).astype(np.int64)
        coords = np.clip(coords, 0, self._dims - 1)
        dims = self._dims
        r2 = radius * radius

        # 27 neighbor boxes per point, enumerated dz-slowest / dx-fastest
        # to match the scalar loop's candidate order exactly.
        d = np.array([-1, 0, 1], dtype=np.int64)
        off = np.stack(np.meshgrid(d, d, d, indexing="ij"), axis=-1).reshape(27, 3)
        nbz = coords[:, 2][:, None] + off[None, :, 0]
        nby = coords[:, 1][:, None] + off[None, :, 1]
        nbx = coords[:, 0][:, None] + off[None, :, 2]
        valid = (
            (nbx >= 0) & (nbx < dims[0])
            & (nby >= 0) & (nby < dims[1])
            & (nbz >= 0) & (nbz < dims[2])
        )
        nbid = (nbz * dims[1] + nby) * dims[0] + nbx
        nbid[~valid] = 0  # clamped; masked out via reps below
        fresh = self._box_stamp[nbid] == self._timestamp
        reps = np.where(valid & fresh, self._box_count[nbid], 0)

        per_point = reps.sum(axis=1)
        reps_f = reps.ravel()
        total = int(per_point.sum())
        if total == 0:
            return [np.empty(0, dtype=np.int64) for _ in range(m)]
        qp = np.repeat(np.arange(m, dtype=np.int64), per_point)
        # Gather the ranges [start, start+count) of each (point, box) pair.
        csum = np.cumsum(reps_f) - reps_f
        within = np.arange(total, dtype=np.int64) - np.repeat(csum, reps_f)
        cand = self._order[np.repeat(self._box_start[nbid].ravel(), reps_f) + within]

        pos = self._positions
        dx = pos[cand, 0] - points[qp, 0]
        dy = pos[cand, 1] - points[qp, 1]
        dz = pos[cand, 2] - points[qp, 2]
        d2 = dx * dx
        d2 += dy * dy
        d2 += dz * dz
        keep = d2 <= r2
        cand = cand[keep]
        counts = np.bincount(qp[keep], minlength=m)
        return [piece.copy() for piece in
                np.split(cand, np.cumsum(counts)[:-1])]

    def query_scalar(self, points: np.ndarray,
                     radius: float | None = None) -> list[np.ndarray]:
        """Reference implementation of :meth:`query` (per-point loop).

        Kept verbatim as the oracle baseline the vectorized path is
        differentially tested against (:mod:`repro.verify.oracle`).
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if len(self._positions) == 0:
            return [np.empty(0, dtype=np.int64) for _ in range(len(points))]
        radius = self._radius if radius is None else radius
        if radius > self._radius + 1e-12:
            raise ValueError("query radius exceeds the build radius")
        coords = ((points - self._mins) / self._box_len).astype(np.int64)
        coords = np.clip(coords, 0, self._dims - 1)
        out = []
        r2 = radius * radius
        for p, (cx, cy, cz) in zip(points, coords):
            cands = []
            for dz in (-1, 0, 1):
                z = cz + dz
                if not 0 <= z < self._dims[2]:
                    continue
                for dy in (-1, 0, 1):
                    y = cy + dy
                    if not 0 <= y < self._dims[1]:
                        continue
                    for dx in (-1, 0, 1):
                        x = cx + dx
                        if not 0 <= x < self._dims[0]:
                            continue
                        b = (z * self._dims[1] + y) * self._dims[0] + x
                        if self._box_stamp[b] != self._timestamp:
                            continue
                        s = self._box_start[b]
                        cands.append(self._order[s : s + self._box_count[b]])
            if cands:
                cand = np.concatenate(cands)
                d2 = np.sum((self._positions[cand] - p) ** 2, axis=1)
                out.append(cand[d2 <= r2])
            else:
                out.append(np.empty(0, dtype=np.int64))
        return out

    # ------------------------------------------------------------------ #
    # Introspection used by agent sorting (§4.2) and tests
    # ------------------------------------------------------------------ #

    @property
    def dims(self) -> np.ndarray:
        return self._dims

    @property
    def box_length(self) -> float:
        return self._box_len

    @property
    def box_of_agent(self) -> np.ndarray:
        return self._box_of_agent

    @property
    def num_boxes(self) -> int:
        """Total boxes of the current grid geometry."""
        if getattr(self, "_incremental", False) or len(self._positions):
            return int(np.prod(self._dims))
        return 0

    def linked_list_state(self) -> dict:
        """Raw build state for the invariant checker (:mod:`repro.verify`).

        Returns views, not copies — read-only use only.  ``order`` and
        ``successor`` describe the array-based linked lists; a box is live
        iff ``box_stamp[b] == timestamp``.
        """
        return {
            "timestamp": self._timestamp,
            "box_start": self._box_start,
            "box_count": self._box_count,
            "box_stamp": self._box_stamp,
            "successor": self._successor,
            "order": self._order,
            "box_of_agent": self._box_of_agent,
            "positions": self._positions,
            "mins": self._mins,
            "dims": self._dims,
            "box_length": self._box_len,
        }
