"""Neighbor-search environments (paper §3.1, §6.9).

BioDynaMo exposes a common *environment* interface over interchangeable
radial neighbor-search algorithms.  We implement the three the paper
evaluates in Fig. 11:

- :class:`~repro.env.uniform_grid.UniformGridEnvironment` — the paper's
  optimized uniform grid: boxes the size of the interaction radius,
  timestamped so the build never touches empty boxes (O(#agents), not
  O(#agents + #boxes)), an array-based linked list sharing agent indices
  with the ResourceManager, and a parallelizable build.
- :class:`~repro.env.kdtree.KDTreeEnvironment` — a from-scratch kd-tree
  (the role nanoflann plays in BioDynaMo); serial build.
- :class:`~repro.env.octree.OctreeEnvironment` — a from-scratch bucket
  octree after Behley et al.; serial build.

All three return identical neighbor sets (CSR adjacency within the
interaction radius) and report the work they performed (build work, per-
agent search candidates, index memory) so the virtual machine can charge
costs.
"""

from repro.env.environment import (
    BruteForceEnvironment,
    BuildWork,
    Environment,
    brute_force_csr,
    csr_row_index,
    refilter_csr,
)
from repro.env.uniform_grid import UniformGridEnvironment
from repro.env.kdtree import KDTreeEnvironment
from repro.env.octree import OctreeEnvironment

__all__ = [
    "BuildWork",
    "Environment",
    "UniformGridEnvironment",
    "KDTreeEnvironment",
    "OctreeEnvironment",
    "BruteForceEnvironment",
    "brute_force_csr",
    "csr_row_index",
    "refilter_csr",
]


def make_environment(name: str, **kwargs) -> Environment:
    """Factory for benchmark configurations: ``uniform_grid`` / ``kd_tree`` /
    ``octree``, plus the O(n^2) ``brute_force`` reference used by the
    differential oracle (:mod:`repro.verify`)."""
    if name == "uniform_grid":
        return UniformGridEnvironment(**kwargs)
    if name == "kd_tree":
        return KDTreeEnvironment(**kwargs)
    if name == "octree":
        return OctreeEnvironment(**kwargs)
    if name == "brute_force":
        return BruteForceEnvironment(**kwargs)
    raise ValueError(f"unknown environment {name!r}")
