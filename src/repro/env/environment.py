"""Common interface for radial neighbor-search environments."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = [
    "BuildWork",
    "Environment",
    "BruteForceEnvironment",
    "brute_force_csr",
    "csr_row_index",
    "refilter_csr",
]


@dataclass
class BuildWork:
    """Work performed while (re)building an environment index.

    The virtual machine charges ``per_item_cycles`` as a parallel region
    when the build is parallelizable (the uniform grid) and
    ``serial_cycles`` as a serial section otherwise (kd-tree, octree) —
    the distinction behind the 255–983x build-time gap in Fig. 11.
    """

    parallelizable: bool
    per_item_cycles: np.ndarray | None = None
    serial_cycles: float = 0.0
    memory_bytes: int = 0
    #: Span of the index array hit by scattered writes during the build
    #: (e.g. the grid's box array).  The scheduler charges one access at
    #: this address distance per item — how a "wider environment"
    #: increases the update time (paper §6.3, epidemiology).
    random_access_spread_bytes: float = 0.0


class Environment(ABC):
    """A fixed-radius neighbor index over agent positions.

    Subclasses must set :attr:`name` and implement :meth:`update` and
    :meth:`neighbor_csr`.  ``update`` must be called whenever agent
    positions changed; BioDynaMo rebuilds the environment at the start of
    every iteration (Algorithm 1, L3-5).
    """

    name: str = "environment"

    #: Whether this environment may serve as the backing index of the
    #: scheduler's displacement-bounded neighbor cache (Verlet-skin CSR
    #: reuse).  Requires :meth:`neighbor_csr` to emit rows in canonical
    #: ascending-index order, so a re-filtered superset CSR is *bitwise*
    #: identical to a fresh exact build.  Environments that do not give
    #: that guarantee (kd-tree, octree) leave this ``False`` and the
    #: scheduler rebuilds them every step, exactly as before.
    supports_neighbor_cache: bool = False

    def __init__(self):
        self.last_build_work: BuildWork | None = None

    @abstractmethod
    def update(self, positions: np.ndarray, radius: float) -> BuildWork:
        """(Re)build the index for ``positions`` with interaction ``radius``."""

    @abstractmethod
    def neighbor_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """All-pairs fixed-radius neighbors as CSR ``(indptr, indices)``.

        ``indices[indptr[i]:indptr[i+1]]`` are the agents within the
        interaction radius of agent ``i`` (excluding ``i`` itself).
        """

    @abstractmethod
    def search_candidates_per_agent(self) -> np.ndarray:
        """Number of candidate agents examined per query during the last
        :meth:`neighbor_csr` (the search work charged to agent operations)."""

    @abstractmethod
    def search_cycles_per_agent(self) -> np.ndarray:
        """Search cost per query in cycles, for the virtual cost model."""

    @abstractmethod
    def query(self, points: np.ndarray,
              radius: float | None = None) -> list[np.ndarray]:
        """Agents within ``radius`` of arbitrary query ``points``.

        The vectorized point-query surface of every environment: returns
        one index array per point, using the current build.  ``radius``
        defaults to the build radius; box-based environments (the uniform
        grid) reject a larger one, tree environments accept any positive
        radius.  Result order within one point's array is
        implementation-defined, but :meth:`query` and
        :meth:`query_scalar` of the same environment must return
        *identical* arrays — the differential oracle
        (:mod:`repro.verify.oracle`) enforces this.
        """

    @property
    def positions(self) -> np.ndarray:
        """Positions of the last build (read-only view)."""
        return self._positions

    @property
    def build_radius(self) -> float:
        """Interaction radius of the last build."""
        return self._radius

    def query_scalar(self, points: np.ndarray,
                     radius: float | None = None) -> list[np.ndarray]:
        """Reference implementation of :meth:`query` (per-point loop).

        Oracle-only: a plain distance scan over the build's positions,
        ascending index order.  Environments whose vectorized
        :meth:`query` emits a different (structure-derived) order
        override this with a matching scalar walk, as the uniform grid
        does.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        positions = self.positions
        if len(positions) == 0:
            return [np.empty(0, dtype=np.int64) for _ in range(len(points))]
        radius = self.build_radius if radius is None else float(radius)
        if radius <= 0:
            raise ValueError("query radius must be positive")
        out = []
        for p in points:
            d2 = np.sum((positions - p) ** 2, axis=1)
            out.append(np.flatnonzero(d2 <= radius * radius).astype(np.int64))
        return out

    @property
    def memory_bytes(self) -> int:
        """Bytes held by the index (Fig. 11, memory row)."""
        return self.last_build_work.memory_bytes if self.last_build_work else 0

    # Convenience used by tests and examples -----------------------------

    def neighbors_of(self, i: int) -> np.ndarray:
        """Neighbor indices of agent ``i`` from the current build."""
        indptr, indices = self.neighbor_csr()
        return indices[indptr[i] : indptr[i + 1]]

    # Query-snapshot interface (repro.verify) -----------------------------

    def neighbor_lists(self) -> list[np.ndarray]:
        """Per-agent neighbor lists in canonical (sorted) form.

        All environments must agree on this representation for identical
        inputs — it is the normal form the differential oracle
        (:mod:`repro.verify.oracle`) compares across implementations.
        """
        indptr, indices = self.neighbor_csr()
        return [
            np.sort(indices[indptr[i] : indptr[i + 1]])
            for i in range(len(indptr) - 1)
        ]


def csr_row_index(indptr: np.ndarray,
                  indices: np.ndarray) -> np.ndarray:
    """Per-entry row ids of a CSR: ``qi[k]`` is the row of ``indices[k]``.

    The ``np.repeat(arange(n), diff(indptr))`` expansion every CSR
    consumer needs (forces, refilter, memory profiling), factored out so
    it can be computed once per CSR and cached alongside it.
    """
    n = len(indptr) - 1
    return np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))


def refilter_csr(indptr: np.ndarray, indices: np.ndarray, qi: np.ndarray,
                 positions: np.ndarray, radius: float,
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Filter a superset CSR down to pairs within ``radius``, preserving order.

    ``(indptr, indices)`` is a neighbor CSR built with an *inflated*
    radius (interaction radius + skin) at some earlier positions; ``qi``
    is its row expansion (:func:`csr_row_index`).  One vectorized
    distance pass over the stored pairs — evaluated at the *current*
    ``positions`` — keeps exactly the pairs within ``radius`` now.

    Order preservation is the bitwise-identity argument: the superset's
    rows are in canonical ascending-index order (required by
    ``Environment.supports_neighbor_cache``), a boolean mask keeps a
    subsequence of each row, and a subsequence of an ascending run is
    ascending — so the result equals, element for element, the CSR a
    fresh exact-radius build would produce.  The distance arithmetic
    (componentwise ``dx*dx; += dy*dy; += dz*dz`` in float64) matches the
    grid build's filter, so the boundary cases round identically too.

    Returns ``(indptr, indices, qi)`` of the filtered CSR; the returned
    ``qi`` is the row expansion of the *result*, handed back so callers
    never recompute it.
    """
    n = len(indptr) - 1
    if len(indices) == 0:
        return indptr, indices, qi
    px, py, pz = positions[:, 0], positions[:, 1], positions[:, 2]
    dx = px[qi] - px[indices]
    dy = py[qi] - py[indices]
    dz = pz[qi] - pz[indices]
    d2 = dx * dx
    d2 += dy * dy
    d2 += dz * dz
    keep = d2 <= radius * radius
    qi_kept = qi[keep]
    counts = np.bincount(qi_kept, minlength=n)
    new_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=new_indptr[1:])
    return new_indptr, indices[keep], qi_kept


def brute_force_csr(positions: np.ndarray, radius: float) -> tuple[np.ndarray, np.ndarray]:
    """Reference O(n^2) neighbor search used by the test suite."""
    n = len(positions)
    d2 = np.sum((positions[:, None, :] - positions[None, :, :]) ** 2, axis=-1)
    mask = (d2 <= radius * radius) & ~np.eye(n, dtype=bool)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(mask.sum(axis=1), out=indptr[1:])
    indices = np.nonzero(mask)[1]
    return indptr, indices


class BruteForceEnvironment(Environment):
    """The O(n^2) all-pairs reference as a full :class:`Environment`.

    Exists so the differential oracle (and small debugging simulations)
    can run the exact same code paths through an implementation whose
    correctness is self-evident — the role BioDynaMo's environment
    cross-checks play in §6.9.  Quadratic: keep it to small populations.
    """

    name = "brute_force"

    #: Distance check per candidate (every other agent is a candidate).
    _CAND_CYCLES = 8.0

    def __init__(self):
        super().__init__()
        self._positions = np.empty((0, 3))
        self._radius = 0.0
        self._csr: tuple[np.ndarray, np.ndarray] | None = None

    def update(self, positions: np.ndarray, radius: float) -> BuildWork:
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError("positions must have shape (n, 3)")
        if radius <= 0:
            raise ValueError("interaction radius must be positive")
        self._positions = positions
        self._radius = radius
        self._csr = None
        # There is no index: the "build" stores a reference.
        self.last_build_work = BuildWork(parallelizable=False, serial_cycles=1.0)
        return self.last_build_work

    def neighbor_csr(self) -> tuple[np.ndarray, np.ndarray]:
        if self._csr is None:
            self._csr = brute_force_csr(self._positions, self._radius)
        return self._csr

    def search_candidates_per_agent(self) -> np.ndarray:
        n = len(self._positions)
        return np.full(n, max(n - 1, 0), dtype=np.int64)

    def search_cycles_per_agent(self) -> np.ndarray:
        """Search cost per query: one distance check per candidate."""
        return self.search_candidates_per_agent() * self._CAND_CYCLES

    def query(self, points: np.ndarray,
              radius: float | None = None) -> list[np.ndarray]:
        """Vectorized all-pairs point query (ascending index order)."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        m = len(points)
        if len(self._positions) == 0 or m == 0:
            return [np.empty(0, dtype=np.int64) for _ in range(m)]
        radius = self._radius if radius is None else float(radius)
        if radius <= 0:
            raise ValueError("query radius must be positive")
        d2 = np.sum(
            (points[:, None, :] - self._positions[None, :, :]) ** 2, axis=-1
        )
        mask = d2 <= radius * radius
        return [np.flatnonzero(row).astype(np.int64) for row in mask]
