"""Common interface for radial neighbor-search environments."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = ["BuildWork", "Environment"]


@dataclass
class BuildWork:
    """Work performed while (re)building an environment index.

    The virtual machine charges ``per_item_cycles`` as a parallel region
    when the build is parallelizable (the uniform grid) and
    ``serial_cycles`` as a serial section otherwise (kd-tree, octree) —
    the distinction behind the 255–983x build-time gap in Fig. 11.
    """

    parallelizable: bool
    per_item_cycles: np.ndarray | None = None
    serial_cycles: float = 0.0
    memory_bytes: int = 0
    #: Span of the index array hit by scattered writes during the build
    #: (e.g. the grid's box array).  The scheduler charges one access at
    #: this address distance per item — how a "wider environment"
    #: increases the update time (paper §6.3, epidemiology).
    random_access_spread_bytes: float = 0.0


class Environment(ABC):
    """A fixed-radius neighbor index over agent positions.

    Subclasses must set :attr:`name` and implement :meth:`update` and
    :meth:`neighbor_csr`.  ``update`` must be called whenever agent
    positions changed; BioDynaMo rebuilds the environment at the start of
    every iteration (Algorithm 1, L3-5).
    """

    name: str = "environment"

    def __init__(self):
        self.last_build_work: BuildWork | None = None

    @abstractmethod
    def update(self, positions: np.ndarray, radius: float) -> BuildWork:
        """(Re)build the index for ``positions`` with interaction ``radius``."""

    @abstractmethod
    def neighbor_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """All-pairs fixed-radius neighbors as CSR ``(indptr, indices)``.

        ``indices[indptr[i]:indptr[i+1]]`` are the agents within the
        interaction radius of agent ``i`` (excluding ``i`` itself).
        """

    @abstractmethod
    def search_candidates_per_agent(self) -> np.ndarray:
        """Number of candidate agents examined per query during the last
        :meth:`neighbor_csr` (the search work charged to agent operations)."""

    @property
    def memory_bytes(self) -> int:
        """Bytes held by the index (Fig. 11, memory row)."""
        return self.last_build_work.memory_bytes if self.last_build_work else 0

    # Convenience used by tests and examples -----------------------------

    def neighbors_of(self, i: int) -> np.ndarray:
        """Neighbor indices of agent ``i`` from the current build."""
        indptr, indices = self.neighbor_csr()
        return indices[indptr[i] : indptr[i + 1]]


def brute_force_csr(positions: np.ndarray, radius: float) -> tuple[np.ndarray, np.ndarray]:
    """Reference O(n^2) neighbor search used by the test suite."""
    n = len(positions)
    d2 = np.sum((positions[:, None, :] - positions[None, :, :]) ** 2, axis=-1)
    mask = (d2 <= radius * radius) & ~np.eye(n, dtype=bool)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(mask.sum(axis=1), out=indptr[1:])
    indices = np.nonzero(mask)[1]
    return indptr, indices
