"""From-scratch kd-tree environment (the role of nanoflann in BioDynaMo).

The tree is built serially — exactly the property that makes the
"BioDynaMo standard implementation" scale poorly in the paper's Fig. 10 —
by recursive median splits along the widest dimension, down to
``leaf_size`` points per leaf.

Fixed-radius queries run as a *batched* traversal: all queries start at
the root, and at every inner node the query set is partitioned by which
children their search balls overlap.  This visits exactly the same nodes
a per-query recursion would, but in a handful of vector operations per
node, and counts per-query visited work for the cost model.
"""

from __future__ import annotations

import numpy as np

from repro.env.environment import BuildWork, Environment

__all__ = ["KDTreeEnvironment"]

_BUILD_ELEM_CYCLES = 24.0   # partition work per element per tree level
_NODE_VISIT_CYCLES = 48.0   # traversal cost per visited node
_LEAF_CAND_CYCLES = 11.0     # distance check per leaf candidate


class _Node:
    __slots__ = ("dim", "val", "left", "right", "lo", "hi")

    def __init__(self, lo, hi):
        self.dim = -1
        self.val = 0.0
        self.left = None
        self.right = None
        self.lo = lo
        self.hi = hi  # leaf: points idx[lo:hi]


class KDTreeEnvironment(Environment):
    """Serial-build kd-tree with batched fixed-radius search."""

    name = "kd_tree"

    def __init__(self, leaf_size: int = 16):
        super().__init__()
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.leaf_size = leaf_size
        self._root: _Node | None = None
        self._idx = np.empty(0, dtype=np.int64)
        self._positions = np.empty((0, 3))
        self._radius = 0.0
        self._num_nodes = 0
        self._build_elem_work = 0
        self._visited = np.empty(0, dtype=np.int64)
        self._csr = None

    def update(self, positions: np.ndarray, radius: float) -> BuildWork:
        positions = np.asarray(positions, dtype=np.float64)
        if radius <= 0:
            raise ValueError("interaction radius must be positive")
        n = len(positions)
        self._positions = positions
        self._radius = radius
        self._idx = np.arange(n, dtype=np.int64)
        self._num_nodes = 0
        self._build_elem_work = 0
        self._csr = None
        self._root = self._build(0, n) if n else None
        self.last_build_work = BuildWork(
            parallelizable=False,  # the serial build the paper calls out
            serial_cycles=self._build_elem_work * _BUILD_ELEM_CYCLES
            + self._num_nodes * _NODE_VISIT_CYCLES,
            memory_bytes=self._num_nodes * 48 + n * 8,
        )
        return self.last_build_work

    def _build(self, lo: int, hi: int) -> _Node:
        node = _Node(lo, hi)
        self._num_nodes += 1
        count = hi - lo
        if count <= self.leaf_size:
            return node
        self._build_elem_work += count
        seg = self._idx[lo:hi]
        pts = self._positions[seg]
        dim = int(np.argmax(pts.max(axis=0) - pts.min(axis=0)))
        mid = count // 2
        part = np.argpartition(pts[:, dim], mid)
        self._idx[lo:hi] = seg[part]
        node.dim = dim
        node.val = float(self._positions[self._idx[lo + mid], dim])
        node.left = self._build(lo, lo + mid)
        node.right = self._build(lo + mid, hi)
        return node

    # ------------------------------------------------------------------ #

    def neighbor_csr(self) -> tuple[np.ndarray, np.ndarray]:
        if self._csr is not None:
            return self._csr
        n = len(self._positions)
        visited = np.zeros(n, dtype=np.int64)
        if n == 0:
            self._visited = visited
            self._csr = (np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64))
            return self._csr

        pos = self._positions
        r = self._radius
        r2 = r * r
        qi_parts: list[np.ndarray] = []
        cand_parts: list[np.ndarray] = []

        # Batched traversal: (node, query-index array) work list.
        stack = [(self._root, np.arange(n, dtype=np.int64))]
        while stack:
            node, queries = stack.pop()
            visited[queries] += 1
            if node.dim == -1:  # leaf
                leaf = self._idx[node.lo : node.hi]
                if len(leaf) == 0 or len(queries) == 0:
                    continue
                visited[queries] += len(leaf)
                qi = np.repeat(queries, len(leaf))
                cand = np.tile(leaf, len(queries))
                d2 = np.sum((pos[qi] - pos[cand]) ** 2, axis=1)
                keep = (d2 <= r2) & (qi != cand)
                qi_parts.append(qi[keep])
                cand_parts.append(cand[keep])
                continue
            qvals = pos[queries, node.dim]
            go_left = qvals - r <= node.val
            go_right = qvals + r >= node.val
            ql = queries[go_left]
            qr = queries[go_right]
            if len(ql):
                stack.append((node.left, ql))
            if len(qr):
                stack.append((node.right, qr))

        qi = np.concatenate(qi_parts) if qi_parts else np.empty(0, dtype=np.int64)
        cand = np.concatenate(cand_parts) if cand_parts else np.empty(0, dtype=np.int64)
        counts = np.bincount(qi, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(qi, kind="stable")
        self._visited = visited
        self._csr = (indptr, cand[order])
        return self._csr

    def search_candidates_per_agent(self) -> np.ndarray:
        if self._csr is None:
            self.neighbor_csr()
        return self._visited

    def search_cycles_per_agent(self) -> np.ndarray:
        """Search cost per query in cycles (visited work times unit cost)."""
        # Visited counts mix node visits and leaf candidates; both cost
        # roughly one dependent memory access + compare.
        return self.search_candidates_per_agent() * _LEAF_CAND_CYCLES

    def query(self, points: np.ndarray,
              radius: float | None = None) -> list[np.ndarray]:
        """Batched fixed-radius point query over the current tree.

        Same worklist traversal as :meth:`neighbor_csr`, but the query
        balls come from arbitrary points.  Returns ascending index
        arrays, matching the scalar oracle reference exactly.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        m = len(points)
        if self._root is None or m == 0:
            return [np.empty(0, dtype=np.int64) for _ in range(m)]
        radius = self._radius if radius is None else float(radius)
        if radius <= 0:
            raise ValueError("query radius must be positive")
        r2 = radius * radius
        pos = self._positions
        qp_parts: list[np.ndarray] = []
        cand_parts: list[np.ndarray] = []
        stack = [(self._root, np.arange(m, dtype=np.int64))]
        while stack:
            node, queries = stack.pop()
            if node.dim == -1:  # leaf
                leaf = self._idx[node.lo : node.hi]
                if len(leaf) == 0 or len(queries) == 0:
                    continue
                qp = np.repeat(queries, len(leaf))
                cand = np.tile(leaf, len(queries))
                d2 = np.sum((points[qp] - pos[cand]) ** 2, axis=1)
                keep = d2 <= r2
                qp_parts.append(qp[keep])
                cand_parts.append(cand[keep])
                continue
            qvals = points[queries, node.dim]
            ql = queries[qvals - radius <= node.val]
            qr = queries[qvals + radius >= node.val]
            if len(ql):
                stack.append((node.left, ql))
            if len(qr):
                stack.append((node.right, qr))
        qp = np.concatenate(qp_parts) if qp_parts else np.empty(0, np.int64)
        cand = (np.concatenate(cand_parts) if cand_parts
                else np.empty(0, np.int64))
        order = np.lexsort((cand, qp))
        qp, cand = qp[order], cand[order]
        counts = np.bincount(qp, minlength=m)
        return [piece.copy() for piece in
                np.split(cand, np.cumsum(counts)[:-1])]

    @property
    def num_nodes(self) -> int:
        return self._num_nodes
