"""From-scratch bucket octree environment (after Behley et al., ICRA'15).

BioDynaMo's third environment wraps the UniBN octree; we implement the
same idea: a cubic root cell covering all agents, recursively subdivided
into octants until at most ``bucket_size`` agents remain.  The build is
serial (as in the paper's evaluation); fixed-radius queries run as a
batched traversal with ball/cell overlap pruning, like the kd-tree.
"""

from __future__ import annotations

import numpy as np

from repro.env.environment import BuildWork, Environment

__all__ = ["OctreeEnvironment"]

_BUILD_ELEM_CYCLES = 20.0
_NODE_VISIT_CYCLES = 42.0
_LEAF_CAND_CYCLES = 10.0


class _Cell:
    __slots__ = ("center", "extent", "bmin", "bmax", "children", "lo", "hi")

    def __init__(self, center, extent, lo, hi):
        self.center = center
        self.extent = extent
        # Tight bounds of the points actually in the cell.  Queries prune
        # against these, not the nominal center/extent box: the nominal
        # box accumulates rounding through center ± extent/2 subdivision
        # and can sit one ULP away from a contained point, pruning a
        # subtree that holds a neighbor at exactly radius distance (found
        # by the differential oracle, repro.verify).
        self.bmin = None
        self.bmax = None
        self.children: list["_Cell"] | None = None
        self.lo = lo
        self.hi = hi


class OctreeEnvironment(Environment):
    """Serial-build bucket octree with batched fixed-radius search."""

    name = "octree"

    def __init__(self, bucket_size: int = 32, min_extent: float = 1e-9):
        super().__init__()
        if bucket_size < 1:
            raise ValueError("bucket_size must be >= 1")
        self.bucket_size = bucket_size
        self.min_extent = min_extent
        self._root: _Cell | None = None
        self._idx = np.empty(0, dtype=np.int64)
        self._positions = np.empty((0, 3))
        self._radius = 0.0
        self._num_nodes = 0
        self._build_elem_work = 0
        self._visited = np.empty(0, dtype=np.int64)
        self._csr = None

    def update(self, positions: np.ndarray, radius: float) -> BuildWork:
        positions = np.asarray(positions, dtype=np.float64)
        if radius <= 0:
            raise ValueError("interaction radius must be positive")
        n = len(positions)
        self._positions = positions
        self._radius = radius
        self._idx = np.arange(n, dtype=np.int64)
        self._num_nodes = 0
        self._build_elem_work = 0
        self._csr = None
        if n:
            mins = positions.min(axis=0)
            maxs = positions.max(axis=0)
            center = (mins + maxs) / 2.0
            extent = float(np.max(maxs - mins) / 2.0) + 1e-9
            self._root = self._build(center, extent, 0, n)
        else:
            self._root = None
        self.last_build_work = BuildWork(
            parallelizable=False,
            serial_cycles=self._build_elem_work * _BUILD_ELEM_CYCLES
            + self._num_nodes * _NODE_VISIT_CYCLES,
            memory_bytes=self._num_nodes * 64 + n * 8,
        )
        return self.last_build_work

    def _build(self, center, extent, lo, hi) -> _Cell:
        cell = _Cell(center, extent, lo, hi)
        self._num_nodes += 1
        count = hi - lo
        seg = self._idx[lo:hi]
        pts = self._positions[seg]
        cell.bmin = pts.min(axis=0)
        cell.bmax = pts.max(axis=0)
        if count <= self.bucket_size or extent <= self.min_extent:
            return cell
        self._build_elem_work += count
        octant = (
            (pts[:, 0] > center[0]).astype(np.int64)
            | ((pts[:, 1] > center[1]).astype(np.int64) << 1)
            | ((pts[:, 2] > center[2]).astype(np.int64) << 2)
        )
        order = np.argsort(octant, kind="stable")
        self._idx[lo:hi] = seg[order]
        counts = np.bincount(octant, minlength=8)
        bounds = np.zeros(9, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        half = extent / 2.0
        children = []
        for o in range(8):
            c_lo, c_hi = lo + bounds[o], lo + bounds[o + 1]
            offset = np.array(
                [half if o & 1 else -half,
                 half if o & 2 else -half,
                 half if o & 4 else -half]
            )
            if c_hi > c_lo:
                children.append(self._build(center + offset, half, c_lo, c_hi))
            else:
                children.append(None)
        cell.children = children
        return cell

    # ------------------------------------------------------------------ #

    def neighbor_csr(self) -> tuple[np.ndarray, np.ndarray]:
        if self._csr is not None:
            return self._csr
        n = len(self._positions)
        visited = np.zeros(n, dtype=np.int64)
        if n == 0:
            self._visited = visited
            self._csr = (np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64))
            return self._csr

        pos = self._positions
        r = self._radius
        r2 = r * r
        qi_parts, cand_parts = [], []
        stack = [(self._root, np.arange(n, dtype=np.int64))]
        while stack:
            cell, queries = stack.pop()
            visited[queries] += 1
            if cell.children is None:  # leaf bucket
                leaf = self._idx[cell.lo : cell.hi]
                if len(leaf) == 0 or len(queries) == 0:
                    continue
                visited[queries] += len(leaf)
                qi = np.repeat(queries, len(leaf))
                cand = np.tile(leaf, len(queries))
                d2 = np.sum((pos[qi] - pos[cand]) ** 2, axis=1)
                keep = (d2 <= r2) & (qi != cand)
                qi_parts.append(qi[keep])
                cand_parts.append(cand[keep])
                continue
            for child in cell.children:
                if child is None:
                    continue
                # Ball/cell overlap test (Behley et al., Sec. III) against
                # the child's *tight* point bounds.  Per dimension,
                # fl(bmin - q) <= fl(x - q) for any contained point x, so
                # this never prunes a cell holding a true neighbor — the
                # comparison degrades to exactly the leaf's distance
                # arithmetic for a corner point.
                qp = pos[queries]
                delta = np.maximum(
                    np.maximum(child.bmin - qp, qp - child.bmax), 0.0
                )
                d2c = np.sum(delta * delta, axis=1)
                overlap = d2c <= r2
                q = queries[overlap]
                if len(q):
                    stack.append((child, q))

        qi = np.concatenate(qi_parts) if qi_parts else np.empty(0, dtype=np.int64)
        cand = np.concatenate(cand_parts) if cand_parts else np.empty(0, dtype=np.int64)
        counts = np.bincount(qi, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(qi, kind="stable")
        self._visited = visited
        self._csr = (indptr, cand[order])
        return self._csr

    def search_candidates_per_agent(self) -> np.ndarray:
        if self._csr is None:
            self.neighbor_csr()
        return self._visited

    def search_cycles_per_agent(self) -> np.ndarray:
        """Search cost per query in cycles (visited work times unit cost)."""
        return self.search_candidates_per_agent() * _LEAF_CAND_CYCLES

    def query(self, points: np.ndarray,
              radius: float | None = None) -> list[np.ndarray]:
        """Batched fixed-radius point query over the current octree.

        The :meth:`neighbor_csr` traversal with arbitrary query balls;
        pruning tests against each cell's tight point bounds.  Returns
        ascending index arrays, matching the scalar oracle reference.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        m = len(points)
        if self._root is None or m == 0:
            return [np.empty(0, dtype=np.int64) for _ in range(m)]
        radius = self._radius if radius is None else float(radius)
        if radius <= 0:
            raise ValueError("query radius must be positive")
        r2 = radius * radius
        pos = self._positions
        qp_parts: list[np.ndarray] = []
        cand_parts: list[np.ndarray] = []
        stack = [(self._root, np.arange(m, dtype=np.int64))]
        while stack:
            cell, queries = stack.pop()
            if cell.children is None:  # leaf bucket
                leaf = self._idx[cell.lo : cell.hi]
                if len(leaf) == 0 or len(queries) == 0:
                    continue
                qp = np.repeat(queries, len(leaf))
                cand = np.tile(leaf, len(queries))
                d2 = np.sum((points[qp] - pos[cand]) ** 2, axis=1)
                keep = d2 <= r2
                qp_parts.append(qp[keep])
                cand_parts.append(cand[keep])
                continue
            for child in cell.children:
                if child is None:
                    continue
                qpts = points[queries]
                delta = np.maximum(
                    np.maximum(child.bmin - qpts, qpts - child.bmax), 0.0
                )
                d2c = np.sum(delta * delta, axis=1)
                q = queries[d2c <= r2]
                if len(q):
                    stack.append((child, q))
        qp = np.concatenate(qp_parts) if qp_parts else np.empty(0, np.int64)
        cand = (np.concatenate(cand_parts) if cand_parts
                else np.empty(0, np.int64))
        order = np.lexsort((cand, qp))
        qp, cand = qp[order], cand[order]
        counts = np.bincount(qp, minlength=m)
        return [piece.copy() for piece in
                np.split(cand, np.cumsum(counts)[:-1])]

    @property
    def num_nodes(self) -> int:
        return self._num_nodes
