"""Dynamics analysis: trajectories and mean-squared displacement."""

from __future__ import annotations

import numpy as np

from repro.core.operation import Operation, OpKind

__all__ = ["TrajectoryRecorder", "mean_squared_displacement"]


class TrajectoryRecorder(Operation):
    """Records per-agent positions over time, keyed by uid.

    A post-standalone operation; agents created later simply start their
    trajectory at their first recorded frame, removed agents stop.
    """

    name = "trajectory_recorder"
    kind = OpKind.POST
    compute_ops = 500.0

    def __init__(self, frequency: int = 1, max_frames: int | None = None):
        super().__init__(frequency)
        self.max_frames = max_frames
        self.times: list[float] = []
        self._frames: list[dict[int, np.ndarray]] = []

    def run(self, sim) -> None:
        """Record one frame (uid to position) unless the cap is reached."""
        if self.max_frames is not None and len(self._frames) >= self.max_frames:
            return
        rm = sim.rm
        frame = {
            int(u): rm.positions[i].copy()
            for i, u in enumerate(rm.data["uid"])
        }
        self._frames.append(frame)
        self.times.append(sim.time)

    @property
    def num_frames(self) -> int:
        return len(self._frames)

    def trajectory_of(self, uid: int) -> tuple[np.ndarray, np.ndarray]:
        """(times, positions) of one agent over its recorded lifetime."""
        ts, ps = [], []
        for t, frame in zip(self.times, self._frames):
            if uid in frame:
                ts.append(t)
                ps.append(frame[uid])
        return np.asarray(ts), np.asarray(ps)

    def common_uids(self) -> list[int]:
        """Agents present in every recorded frame."""
        if not self._frames:
            return []
        alive = set(self._frames[0])
        for frame in self._frames[1:]:
            alive &= set(frame)
        return sorted(alive)


def mean_squared_displacement(recorder: TrajectoryRecorder) -> tuple[np.ndarray, np.ndarray]:
    """MSD over lag time, averaged over agents alive throughout.

    Returns ``(lag_times, msd)``.  Diffusive motion gives MSD ~ 6 D t;
    a static region gives a flat ~0 curve — the analysis behind the
    paper's "agents move randomly" and "static regions" characteristics.
    """
    uids = recorder.common_uids()
    if not uids or recorder.num_frames < 2:
        raise ValueError("need at least two frames with surviving agents")
    # Stack trajectories: (frames, agents, 3).
    traj = np.stack(
        [
            np.stack([frame[u] for u in uids])
            for frame in recorder._frames
        ]
    )
    times = np.asarray(recorder.times)
    nf = len(times)
    lags = np.arange(1, nf)
    msd = np.empty(len(lags))
    for k, lag in enumerate(lags):
        d = traj[lag:] - traj[:-lag]
        msd[k] = float(np.mean(np.sum(d * d, axis=-1)))
    return times[lags] - times[0], msd
