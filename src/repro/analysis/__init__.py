"""Analysis tools for simulation output.

What a downstream modeler reaches for after a run: spatial statistics
(radial distribution function, density profiles, type mixing), dynamics
(mean-squared displacement via the trajectory recorder), and population
structure.  All functions operate on plain arrays or a
:class:`~repro.core.simulation.Simulation`.
"""

from repro.analysis.spatial import (
    density_profile,
    mixing_index,
    nearest_neighbor_distances,
    radial_distribution_function,
)
from repro.analysis.dynamics import TrajectoryRecorder, mean_squared_displacement

__all__ = [
    "radial_distribution_function",
    "density_profile",
    "nearest_neighbor_distances",
    "mixing_index",
    "TrajectoryRecorder",
    "mean_squared_displacement",
]
