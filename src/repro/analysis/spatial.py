"""Spatial statistics over agent positions."""

from __future__ import annotations

import numpy as np

from repro.env.uniform_grid import UniformGridEnvironment

__all__ = [
    "radial_distribution_function",
    "density_profile",
    "nearest_neighbor_distances",
    "mixing_index",
]


def _pair_distances(positions: np.ndarray, r_max: float) -> np.ndarray:
    """All pair distances <= r_max, each unordered pair once (grid-based)."""
    env = UniformGridEnvironment()
    env.update(positions, r_max)
    indptr, indices = env.neighbor_csr()
    counts = np.diff(indptr)
    qi = np.repeat(np.arange(len(positions)), counts)
    mask = qi < indices  # each pair once
    qi, qj = qi[mask], indices[mask]
    return np.linalg.norm(positions[qi] - positions[qj], axis=1)


def radial_distribution_function(
    positions: np.ndarray, r_max: float, bins: int = 40
) -> tuple[np.ndarray, np.ndarray]:
    """g(r): pair density relative to an ideal gas of the same density.

    Returns ``(bin_centers, g)``.  For liquids/packed tissues g(r) peaks
    near the contact distance; for an ideal gas g ~= 1.
    """
    positions = np.asarray(positions, dtype=np.float64)
    n = len(positions)
    if n < 2:
        raise ValueError("need at least two agents")
    d = _pair_distances(positions, r_max)
    edges = np.linspace(0.0, r_max, bins + 1)
    hist, _ = np.histogram(d, bins=edges)
    centers = (edges[:-1] + edges[1:]) / 2.0
    # Ideal-gas normalization over the bounding-box volume.
    span = positions.max(axis=0) - positions.min(axis=0)
    volume = float(np.prod(np.maximum(span, 1e-9)))
    density = n / volume
    shell = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    expected = density * shell * n / 2.0
    with np.errstate(divide="ignore", invalid="ignore"):
        g = np.where(expected > 0, hist / expected, 0.0)
    return centers, g


def density_profile(
    positions: np.ndarray, center=None, bins: int = 20, r_max: float | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Radial number density around ``center`` (default: centroid).

    Returns ``(bin_centers, density)`` in agents per unit volume — the
    classic tumor-spheroid readout.
    """
    positions = np.asarray(positions, dtype=np.float64)
    center = positions.mean(axis=0) if center is None else np.asarray(center)
    r = np.linalg.norm(positions - center, axis=1)
    r_max = float(r.max()) + 1e-9 if r_max is None else r_max
    edges = np.linspace(0.0, r_max, bins + 1)
    hist, _ = np.histogram(r, bins=edges)
    shell = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    return (edges[:-1] + edges[1:]) / 2.0, hist / shell


def nearest_neighbor_distances(positions: np.ndarray, r_max: float) -> np.ndarray:
    """Distance to the nearest neighbor per agent (inf if none within
    ``r_max``)."""
    positions = np.asarray(positions, dtype=np.float64)
    env = UniformGridEnvironment()
    env.update(positions, r_max)
    indptr, indices = env.neighbor_csr()
    out = np.full(len(positions), np.inf)
    counts = np.diff(indptr)
    qi = np.repeat(np.arange(len(positions)), counts)
    if len(qi):
        d = np.linalg.norm(positions[qi] - positions[indices], axis=1)
        np.minimum.at(out, qi, d)
    return out


def mixing_index(positions: np.ndarray, types: np.ndarray, radius: float) -> float:
    """Fraction of neighbor pairs with *different* types.

    0.5 for a random 50/50 mixture; drops toward 0 as the types segregate
    (the inverse of the cell-sorting homotypic fraction).
    """
    positions = np.asarray(positions, dtype=np.float64)
    types = np.asarray(types)
    env = UniformGridEnvironment()
    env.update(positions, radius)
    indptr, indices = env.neighbor_csr()
    if len(indices) == 0:
        return 0.0
    counts = np.diff(indptr)
    qi = np.repeat(np.arange(len(positions)), counts)
    return float(np.mean(types[qi] != types[indices]))
