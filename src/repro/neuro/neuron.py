"""Neuron agents: somas and neurite (cylinder) elements.

A neurite element is modeled as a short cylinder: its ``position`` is the
distal end, ``axis`` the unit direction from its proximal attachment point,
``length`` its current extent, and ``parent_uid`` the uid of the element
(or soma) it grew from.  Terminal elements carry the growth cone
(``is_terminal``) and are the only ones that move.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KIND_SOMA", "KIND_NEURITE", "register_neuro_columns", "add_neuron"]

KIND_SOMA = 0
KIND_NEURITE = 1

#: Extra per-agent attributes of the neuroscience specialization.
NEURO_COLUMNS = (
    ("kind", np.int8, (), KIND_SOMA),
    ("parent_uid", np.int64, (), -1),
    ("axis", np.float64, (3,), 0.0),
    ("length", np.float64, (), 0.0),
    ("is_terminal", np.bool_, (), False),
    ("branch_order", np.int16, (), 0),
)


def register_neuro_columns(sim) -> None:
    """Register the neuroscience columns on a simulation's ResourceManager."""
    for name, dtype, shape, fill in NEURO_COLUMNS:
        if name not in sim.rm.data:
            sim.rm.register_column(name, dtype, shape, fill)


def add_neuron(
    sim,
    soma_position,
    soma_diameter: float = 12.0,
    num_neurites: int = 2,
    neurite_diameter: float = 2.0,
    neuron_id: int | None = None,
    rng=None,
) -> tuple[int, np.ndarray]:
    """Create a soma with ``num_neurites`` initial neurite stubs.

    ``neuron_id`` tags all elements of this neuron (used by synapse
    formation); pass distinct ids per neuron.  Returns
    ``(soma_index, neurite_indices)`` — storage indices valid until the
    next commit or sort.
    """
    register_neuro_columns(sim)
    if neuron_id is not None and "neuron_id" not in sim.rm.data:
        sim.rm.register_column("neuron_id", np.int64, (), -1)
    rng = rng or sim.random.rng
    soma_position = np.asarray(soma_position, dtype=np.float64)

    extra = {}
    if neuron_id is not None:
        extra["neuron_id"] = np.array([neuron_id], dtype=np.int64)
    soma_idx = sim.add_cells(
        soma_position[None, :],
        diameters=soma_diameter,
        kind=np.array([KIND_SOMA], dtype=np.int8),
        **extra,
    )[0]
    soma_uid = int(sim.rm.data["uid"][soma_idx])

    # Sprout stubs in random directions on the soma surface.
    axes = rng.normal(size=(num_neurites, 3))
    axes /= np.linalg.norm(axes, axis=1)[:, None]
    stub_len = neurite_diameter
    positions = soma_position + axes * (soma_diameter / 2.0 + stub_len)
    extra = {}
    if neuron_id is not None:
        extra["neuron_id"] = np.full(num_neurites, neuron_id, dtype=np.int64)
    neurite_idx = sim.add_cells(
        positions,
        diameters=neurite_diameter,
        kind=np.full(num_neurites, KIND_NEURITE, dtype=np.int8),
        parent_uid=np.full(num_neurites, soma_uid, dtype=np.int64),
        axis=axes,
        length=np.full(num_neurites, stub_len),
        is_terminal=np.ones(num_neurites, dtype=bool),
        **extra,
    )
    return int(soma_idx), neurite_idx
