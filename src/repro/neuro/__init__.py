"""Neuroscience specialization (paper §1, §6.1).

BioDynaMo features a neuroscience module able to simulate the development
of neurons: somas sprout neurites, whose terminal segments elongate,
bifurcate, and side-branch; elongated segments are split into chains of
cylinder elements ("discretization").  Only the growth front moves — the
proximal part of each arbor is mechanically inert, which is exactly the
structure the static-agent detection of §5 exploits (Fig. 8/9:
``neuroscience`` gains most from O6).

The module extends the core engine through ResourceManager columns:
``kind`` (soma/neurite), ``parent_uid``, ``axis``, ``length``,
``is_terminal``, and ``branch_order``.
"""

from repro.neuro.neuron import (
    KIND_NEURITE,
    KIND_SOMA,
    add_neuron,
    register_neuro_columns,
)
from repro.neuro.behaviors import NeuriteExtension
from repro.neuro.synapse import SynapseFormation, connectome
from repro.neuro.morphology import (
    arbor_graph,
    branch_counts,
    terminal_tips,
    total_cable_length,
)

__all__ = [
    "KIND_SOMA",
    "KIND_NEURITE",
    "register_neuro_columns",
    "add_neuron",
    "NeuriteExtension",
    "SynapseFormation",
    "connectome",
    "arbor_graph",
    "total_cable_length",
    "branch_counts",
    "terminal_tips",
]
