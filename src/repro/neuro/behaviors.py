"""Neurite growth behaviors: elongation, discretization, bifurcation.

Mirrors BioDynaMo's neuroscience behaviors: the growth cone of a terminal
neurite element elongates along its axis (with random wiggle and optional
chemical guidance), splits off a frozen proximal element once it exceeds
the maximum segment length (discretization), and bifurcates into two
daughter branches with some probability.  Radial growth slightly thickens
the parent element — an agent *modifying its neighbor*, one of the Table-1
workload characteristics of the neuroscience benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.core.behavior import Behavior
from repro.neuro.neuron import KIND_NEURITE

__all__ = ["NeuriteExtension"]


class NeuriteExtension(Behavior):
    """Growth-cone behavior for terminal neurite elements."""

    name = "neurite_extension"
    compute_ops_per_agent = 80.0
    uses_neighbors = True
    moves_agents = True
    grows_agents = True
    creates_agents = True

    def __init__(
        self,
        speed: float = 50.0,
        max_segment_length: float = 6.0,
        bifurcation_probability: float = 0.01,
        max_branch_order: int = 6,
        wiggle: float = 0.15,
        guidance_substance: str | None = None,
        guidance_weight: float = 0.3,
        max_agents: int | None = None,
    ):
        self.speed = speed
        self.max_segment_length = max_segment_length
        self.bifurcation_probability = bifurcation_probability
        self.max_branch_order = max_branch_order
        self.wiggle = wiggle
        self.guidance_substance = guidance_substance
        self.guidance_weight = guidance_weight
        self.max_agents = max_agents

    # ------------------------------------------------------------------ #

    def _parent_indices(self, sim, idx):
        """Map each agent's parent_uid to its current storage index."""
        rm = sim.rm
        uids = rm.data["uid"]
        order = np.argsort(uids)
        parents = rm.data["parent_uid"][idx]
        pos = np.searchsorted(uids[order], parents)
        pos = np.clip(pos, 0, rm.n - 1)
        pidx = order[pos]
        valid = uids[pidx] == parents
        return pidx, valid

    def run(self, sim, idx: np.ndarray) -> None:
        """Elongate, thicken parents, bifurcate, and discretize tips."""
        rm = sim.rm
        rng = sim.random.rng
        dt = sim.param.simulation_time_step

        tips = idx[(rm.data["kind"][idx] == KIND_NEURITE) & rm.data["is_terminal"][idx]]
        if len(tips) == 0:
            return

        # --- Elongation with random wiggle and optional guidance.
        axis = rm.data["axis"][tips]
        axis = axis + rng.normal(scale=self.wiggle, size=axis.shape)
        if self.guidance_substance is not None:
            grid = sim.diffusion_grids.get(self.guidance_substance)
            if grid is not None:
                grad = grid.gradient_at(rm.positions[tips])
                norm = np.linalg.norm(grad, axis=1)
                ok = norm > 1e-12
                grad[ok] /= norm[ok, None]
                axis = axis + self.guidance_weight * grad
        axis /= np.maximum(np.linalg.norm(axis, axis=1)[:, None], 1e-12)
        step = self.speed * dt
        rm.data["axis"][tips] = axis
        rm.positions[tips] += axis * step
        rm.data["length"][tips] += step
        rm.data["moved"][tips] = True

        # --- Radial growth: thicken the parent element (modifies a
        # neighboring agent, Table 1 characteristic).
        pidx, valid = self._parent_indices(sim, tips)
        thicken = pidx[valid & (rm.data["kind"][pidx] == KIND_NEURITE)]
        if len(thicken):
            np.add.at(rm.data["diameter"], thicken, 0.001 * step)
            rm.data["grew"][thicken] = True

        # --- Capacity budget for new elements.
        budget = np.inf
        if self.max_agents is not None:
            budget = max(0, self.max_agents - rm.n - rm.pending_additions)

        # --- Bifurcation: the tip retires and two daughters take over.
        can_branch = rm.data["branch_order"][tips] < self.max_branch_order
        roll = rng.random(len(tips)) < self.bifurcation_probability
        forked = tips[can_branch & roll]
        if len(forked) * 2 > budget:
            forked = forked[: int(budget // 2)]
        if len(forked):
            self._bifurcate(sim, forked, rng)
            budget -= 2 * len(forked)

        # --- Discretization: overly long segments freeze and hand the
        # growth cone to a fresh element.
        still_tips = np.setdiff1d(tips, forked, assume_unique=False)
        long = still_tips[rm.data["length"][still_tips] > self.max_segment_length]
        if len(long) > budget:
            long = long[: int(budget)]
        if len(long):
            self._discretize(sim, long)

    # ------------------------------------------------------------------ #

    def _queue_elements(self, sim, parents, axes, order_bump):
        rm = sim.rm
        positions = rm.positions[parents] + axes * 0.5
        count = len(parents)
        # One batched call with a per-row domain vector; ``parents`` is
        # ascending, so the uid assignment order matches the old
        # per-unique-domain loop.
        attributes = {
            "position": positions,
            "diameter": rm.data["diameter"][parents],
            "behavior_mask": rm.data["behavior_mask"][parents],
            "kind": np.full(count, KIND_NEURITE, dtype=np.int8),
            "parent_uid": rm.data["uid"][parents],
            "axis": axes,
            "length": np.full(count, 0.5),
            "is_terminal": np.ones(count, dtype=bool),
            "branch_order": rm.data["branch_order"][parents] + order_bump,
        }
        if "neuron_id" in rm.data:  # synapse-formation tagging
            attributes["neuron_id"] = rm.data["neuron_id"][parents]
        rm.queue_new_agents(attributes, domain=rm.domain_of_index(parents))
        return count

    def _bifurcate(self, sim, forked, rng):
        rm = sim.rm
        rm.data["is_terminal"][forked] = False
        base = rm.data["axis"][forked]
        for _ in range(2):
            perturb = rng.normal(scale=0.6, size=base.shape)
            axes = base + perturb
            axes /= np.linalg.norm(axes, axis=1)[:, None]
            self._queue_elements(sim, forked, axes, order_bump=1)

    def _discretize(self, sim, long):
        rm = sim.rm
        rm.data["is_terminal"][long] = False
        axes = rm.data["axis"][long]
        self._queue_elements(sim, long, axes, order_bump=0)
