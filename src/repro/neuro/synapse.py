"""Synapse formation between developing neurons.

BioDynaMo's neuroscience module lets axonal growth cones form synapses
with nearby dendritic elements of *other* neurons.  We model the common
simplification: when a terminal element comes within ``contact_distance``
of a neurite element belonging to a different neuron, a synapse forms
with some probability.  Synapses are recorded as (pre_uid, post_uid)
pairs, and :func:`connectome` reduces them to a neuron-level directed
graph — the typical end product of a developmental simulation.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.core.behavior import Behavior
from repro.neuro.neuron import KIND_NEURITE, KIND_SOMA

__all__ = ["SynapseFormation", "connectome"]


class SynapseFormation(Behavior):
    """Forms synapses from terminal elements to nearby foreign neurites.

    Requires a ``neuron_id`` column identifying which neuron every element
    belongs to (``add_neuron`` callers assign it; see the neuroscience
    example).  Formed synapses are stored on the behavior instance as
    ``(pre_element_uid, post_element_uid)`` tuples.
    """

    name = "synapse_formation"
    compute_ops_per_agent = 35.0
    uses_neighbors = True

    def __init__(self, contact_distance: float = 4.0, probability: float = 0.2,
                 max_per_terminal: int = 3):
        self.contact_distance = contact_distance
        self.probability = probability
        self.max_per_terminal = max_per_terminal
        self.synapses: list[tuple[int, int]] = []
        self._per_terminal: dict[int, int] = {}

    def run(self, sim, idx: np.ndarray) -> None:
        """Probe terminal neighborhoods and record formed synapses."""
        rm = sim.rm
        if "neuron_id" not in rm.data:
            raise KeyError("SynapseFormation needs a 'neuron_id' column")
        terminals = idx[
            (rm.data["kind"][idx] == KIND_NEURITE) & rm.data["is_terminal"][idx]
        ]
        if len(terminals) == 0:
            return
        indptr, indices = sim.neighbors()
        pos = rm.positions
        nid = rm.data["neuron_id"]
        uid = rm.data["uid"]
        rng = sim.random.rng
        d_max2 = self.contact_distance**2

        for t in terminals:
            t_uid = int(uid[t])
            budget = self.max_per_terminal - self._per_terminal.get(t_uid, 0)
            if budget <= 0:
                continue
            nbrs = indices[indptr[t] : indptr[t + 1]]
            if len(nbrs) == 0:
                continue
            foreign = nbrs[
                (nid[nbrs] != nid[t]) & (rm.data["kind"][nbrs] == KIND_NEURITE)
            ]
            if len(foreign) == 0:
                continue
            d2 = np.sum((pos[foreign] - pos[t]) ** 2, axis=1)
            close = foreign[d2 <= d_max2]
            if len(close) == 0:
                continue
            roll = rng.random(len(close)) < self.probability
            for post in close[roll][:budget]:
                self.synapses.append((t_uid, int(uid[post])))
                self._per_terminal[t_uid] = self._per_terminal.get(t_uid, 0) + 1


def connectome(sim, synapse_behavior: SynapseFormation) -> nx.DiGraph:
    """Neuron-level directed connectivity graph from formed synapses.

    Nodes are neuron ids; edge weights count synapses between the pair.
    Element uids are resolved through their (historical) neuron ids, so
    the graph survives element removals.
    """
    rm = sim.rm
    uid_to_neuron = dict(
        zip(rm.data["uid"].tolist(), rm.data["neuron_id"].tolist())
    )
    g = nx.DiGraph()
    for n in np.unique(rm.data["neuron_id"][rm.data["kind"] == KIND_SOMA]):
        g.add_node(int(n))
    for pre_uid, post_uid in synapse_behavior.synapses:
        pre = uid_to_neuron.get(pre_uid)
        post = uid_to_neuron.get(post_uid)
        if pre is None or post is None or pre == post:
            continue
        pre, post = int(pre), int(post)
        if g.has_edge(pre, post):
            g[pre][post]["weight"] += 1
        else:
            g.add_edge(pre, post, weight=1)
    return g
