"""Morphology analysis of grown neurons.

Utilities to inspect the arbors produced by :class:`NeuriteExtension`:
reconstruction of the parent/child tree (as a :mod:`networkx` digraph),
total cable length, branch counts per order, and terminal tips.  Used by
the neuroscience example and the test suite to verify that growth produces
biologically plausible structures.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.neuro.neuron import KIND_NEURITE, KIND_SOMA

__all__ = ["arbor_graph", "total_cable_length", "branch_counts", "terminal_tips"]


def arbor_graph(sim) -> nx.DiGraph:
    """Parent→child digraph over all agents (somas are roots)."""
    rm = sim.rm
    g = nx.DiGraph()
    uids = rm.data["uid"]
    kinds = rm.data["kind"]
    for i in range(rm.n):
        g.add_node(
            int(uids[i]),
            kind=int(kinds[i]),
            position=tuple(rm.positions[i]),
            length=float(rm.data["length"][i]),
        )
    parents = rm.data["parent_uid"]
    known = set(uids.tolist())
    for i in range(rm.n):
        p = int(parents[i])
        if p >= 0 and p in known:
            g.add_edge(p, int(uids[i]))
    return g


def total_cable_length(sim) -> float:
    """Sum of all neurite element lengths."""
    rm = sim.rm
    mask = rm.data["kind"] == KIND_NEURITE
    return float(rm.data["length"][mask].sum())


def terminal_tips(sim) -> np.ndarray:
    """Indices of growth cones (terminal neurite elements)."""
    rm = sim.rm
    return np.flatnonzero((rm.data["kind"] == KIND_NEURITE) & rm.data["is_terminal"])


def branch_counts(sim) -> dict[int, int]:
    """Number of neurite elements per branch order."""
    rm = sim.rm
    mask = rm.data["kind"] == KIND_NEURITE
    orders, counts = np.unique(rm.data["branch_order"][mask], return_counts=True)
    return {int(o): int(c) for o, c in zip(orders, counts)}
