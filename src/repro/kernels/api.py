"""Kernel backend interface: the three hot array kernels behind one API.

The profile after the batched agent-ops pipeline (BENCH_agent_ops.json)
is dominated by behaviors + mechanics — exactly the loops that *GPU
Acceleration of 3D Agent-Based Biological Simulations* (PAPERS.md)
pushes onto compiled, vectorized kernels.  This module defines the
narrow waist those loops go through:

- **force** — the Cortex3D pairwise interaction force accumulated over
  the CSR neighbor lists (paper §5, the most expensive operation);
- **displacement** — the clamped forward-Euler integration step;
- **diffusion** — the 7-point diffusion-decay stencil (Table 1).

:class:`KernelBackend` is the strategy interface; the implementations
live in sibling modules (:mod:`repro.kernels.numpy_ref` — the bitwise
reference, :mod:`repro.kernels.numba_jit`,
:mod:`repro.kernels.cupy_backend`) and are selected by
``Param.kernel_backend`` through :mod:`repro.kernels.dispatch`.

Tolerance policy
----------------
The NumPy implementation is the *reference*: it is the bitwise branch of
``repro.verify`` (replay checksums are computed against it) and its
tolerance against itself is exact.  Compiled backends reorder floating
point work (LLVM autovectorization, GPU warp scheduling), so each kernel
declares the deviation it is allowed against the reference in
:data:`KERNEL_TOLERANCES` — one table, imported by the equivalence
tests, the differential oracle helpers, ``verify.replay
.kernel_equivalence`` and ``bench kernels`` alike, so a tolerance is
never re-declared (and silently widened) at a use site.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FORCE_EPSILON",
    "MOVE_EPSILON",
    "KernelTolerance",
    "KERNEL_TOLERANCES",
    "tolerance_for",
    "KernelBackend",
]

#: Relative force magnitudes below this are treated as zero (condition iv
#: of the §5 static-detection mechanism counts non-zero neighbor forces).
#: Canonical definition; re-exported by :mod:`repro.core.force`.
FORCE_EPSILON = 1e-12

#: Movement below this threshold does not count as "moved" (condition i
#: of the §5 static-detection mechanism).  Canonical definition;
#: re-exported by :mod:`repro.parallel.backend`.
MOVE_EPSILON = 1e-9


@dataclass(frozen=True)
class KernelTolerance:
    """Allowed deviation of a compiled kernel from the NumPy reference.

    Compared ``np.allclose``-style: ``|a - b| <= atol + rtol * |b|``
    where ``b`` is the reference output.  ``rtol == atol == 0`` means
    bitwise-exact (the NumPy reference against itself).
    """

    rtol: float
    atol: float

    @property
    def exact(self) -> bool:
        """Whether this tolerance demands bitwise equality."""
        return self.rtol == 0.0 and self.atol == 0.0

    def allclose(self, got, ref) -> bool:
        """Whether ``got`` matches ``ref`` within this tolerance."""
        got = np.asarray(got)
        ref = np.asarray(ref)
        if self.exact:
            return bool(np.array_equal(got, ref))
        return bool(np.allclose(got, ref, rtol=self.rtol, atol=self.atol))

    def max_exceedance(self, got, ref) -> float:
        """Largest ``|got - ref| / (atol + rtol * |ref|)`` ratio.

        Values ``<= 1.0`` are within tolerance; for the exact tolerance
        this returns 0.0 on equality and ``inf`` otherwise.
        """
        got = np.asarray(got, dtype=np.float64)
        ref = np.asarray(ref, dtype=np.float64)
        diff = np.abs(got - ref)
        if self.exact:
            return 0.0 if not np.any(diff) else float("inf")
        allowed = self.atol + self.rtol * np.abs(ref)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(diff == 0.0, 0.0, diff / allowed)
        return float(ratio.max()) if ratio.size else 0.0


#: The single declaration point for per-kernel tolerances (see the module
#: docstring).  ``replay_state`` is the looser whole-state budget used by
#: ``verify.replay.kernel_equivalence`` when comparing *positions after
#: several integrated steps* — per-kernel deviations compound through the
#: trajectory, so the replay comparison cannot reuse the single-call
#: bounds directly.
KERNEL_TOLERANCES: dict[str, KernelTolerance] = {
    # One force evaluation: identical pair math, row accumulation in CSR
    # order on every backend; only instruction scheduling may differ.
    "force": KernelTolerance(rtol=1e-12, atol=1e-12),
    # Row-elementwise: a handful of flops per row, no reductions.
    "displacement": KernelTolerance(rtol=1e-12, atol=1e-14),
    # 7-point stencil: one fused expression per voxel.
    "diffusion": KernelTolerance(rtol=1e-12, atol=1e-13),
    # Whole-state positions after a short replayed trajectory.
    "replay_state": KernelTolerance(rtol=1e-9, atol=1e-9),
}

#: Exact tolerance: the reference backend against itself.
_EXACT = KernelTolerance(rtol=0.0, atol=0.0)


def tolerance_for(kernel: str, backend: str) -> KernelTolerance:
    """The declared tolerance of ``backend`` for ``kernel``.

    The NumPy reference is held to bitwise equality against itself; all
    compiled backends share the per-kernel bounds in
    :data:`KERNEL_TOLERANCES`.
    """
    if backend == "numpy":
        return _EXACT
    try:
        return KERNEL_TOLERANCES[kernel]
    except KeyError:
        raise KeyError(
            f"no declared tolerance for kernel {kernel!r}; known kernels: "
            f"{sorted(KERNEL_TOLERANCES)}"
        ) from None


def _is_plain_cortex3d(force_model) -> bool:
    """Whether ``force_model`` is exactly the stock Cortex3D force.

    Compiled backends hard-code that force law; a subclass overriding
    ``pair_forces`` must take the NumPy fallback path, which dispatches
    through the (possibly overridden) method.
    """
    from repro.core.force import InteractionForce

    return force_model.__class__ is InteractionForce


class KernelBackend:
    """One implementation of the three hot kernels.

    Subclasses set :attr:`name` and :attr:`compiled` and implement the
    ``*_rows`` / full-array entry points.  Call accounting is built in:
    :attr:`calls` counts kernel invocations and :attr:`compile_seconds`
    accumulates JIT time, both surfaced as ``kernel:*`` metrics by
    :func:`repro.kernels.dispatch.make_kernels`.
    """

    #: Backend identifier ("numpy" | "numba" | "cupy").
    name = "base"
    #: Whether this backend runs compiled (non-reference) kernels.  The
    #: execution backends use it to decide when the stock force model can
    #: be replaced by the backend's hard-coded Cortex3D kernel.
    compiled = False

    def __init__(self):
        #: Kernel invocations through this backend instance.
        self.calls = 0
        #: Seconds spent JIT-compiling (0 for interpreter backends).
        self.compile_seconds = 0.0
        #: Invocations that fell back to the NumPy reference because the
        #: force model is a subclass the compiled kernel cannot express.
        self.fallbacks = 0
        #: Invocations that fell back to the NumPy reference because the
        #: device ran out of memory (GPU backends; see
        #: :class:`repro.kernels.cupy_backend.DeviceBufferCache`).
        self.oom_fallbacks = 0
        #: The ResourceManager ``structure_version`` the last kernel call
        #: ran against.  The execution backends refresh it before every
        #: call; backends holding persistent device state key their
        #: buffer invalidation on it.
        self.structure_version = -1

    # -- mechanics ------------------------------------------------------- #

    def force(self, force_model, positions, diameters, indptr, indices,
              active=None):
        """Net force on every agent from its CSR neighbors.

        Returns ``(net_force (n,3), nonzero_counts (n,), pairs_evaluated)``
        with the exact semantics of
        :meth:`repro.core.force.InteractionForce.compute` (``active``
        masks the rows whose forces are computed).
        """
        raise NotImplementedError

    def force_rows(self, force_model, positions, diameters, indptr, indices,
                   active, net_out, nz_out, lo, hi) -> int:
        """Compute rows ``[lo, hi)`` into preallocated outputs.

        Writes ``net_out[lo:hi]`` and ``nz_out[lo:hi]`` (other rows are
        untouched) and returns the number of pairs evaluated — the chunk
        kernel of the process backend.
        """
        raise NotImplementedError

    def displace(self, positions, moved_flags, net_force, dt,
                 max_displacement):
        """Clamped forward-Euler displacement, in place.

        Updates ``positions`` and ``moved_flags`` exactly like
        :func:`repro.parallel.backend.apply_displacement`.
        """
        raise NotImplementedError

    def displace_rows(self, positions, moved_flags, net_force, dt,
                      max_displacement, lo, hi) -> None:
        """Row-range displacement (the process backend's chunk kernel)."""
        raise NotImplementedError

    # -- diffusion ------------------------------------------------------- #

    def diffuse(self, concentration, voxel_size, diffusion_coefficient,
                decay, dt):
        """One explicit diffusion-decay stencil update.

        Returns the *new* concentration array (the input is not
        modified), matching :meth:`repro.core.diffusion.DiffusionGrid
        .step` with Neumann boundaries.
        """
        raise NotImplementedError

    # -- lifecycle ------------------------------------------------------- #

    def bind_arena(self, soa, live_rows: int) -> None:
        """Offer the consolidated SoA arena block before a kernel call.

        The execution backends call this next to refreshing
        :attr:`structure_version`, handing device-resident backends the
        single-arena block (:class:`repro.core.arena.SoAArena`) the live
        columns are views of — which lets the CuPy backend upload one
        host-to-device copy per *domain* instead of one per column.
        No-op for host backends; ``soa`` may be ``None`` (per-column
        layout)."""

    def warm_up(self) -> None:
        """Pre-compile every kernel on tiny inputs (no-op when nothing
        needs compiling).  JIT time lands in :attr:`compile_seconds`."""

    def _count(self) -> None:
        self.calls += 1
