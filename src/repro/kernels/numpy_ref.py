"""NumPy reference kernels — the bitwise source of truth.

These functions hold the *actual array math* that used to live inline in
:meth:`repro.core.force.InteractionForce.pair_forces` /
:meth:`~repro.core.force.InteractionForce.compute`,
:func:`repro.parallel.backend.apply_displacement`, the process backend's
``k_force`` chunk kernel, and :meth:`repro.core.diffusion.DiffusionGrid
.step`.  Those call sites now delegate here, so "the NumPy kernel
backend is bitwise identical to mainline" holds *by construction*: there
is exactly one NumPy implementation of each kernel, and the replay
checksums of ``repro.verify`` are computed over its outputs.

Compiled backends (:mod:`repro.kernels.numba_jit`,
:mod:`repro.kernels.cupy_backend`) re-express this math and are compared
against these functions by ``verify.replay.kernel_equivalence`` and
``tests/test_kernel_equivalence.py`` within the tolerances declared in
:data:`repro.kernels.api.KERNEL_TOLERANCES`.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.api import FORCE_EPSILON, MOVE_EPSILON, KernelBackend

__all__ = [
    "pair_forces",
    "force_csr",
    "force_rows",
    "displace",
    "diffuse",
    "NumpyKernelBackend",
]


def pair_forces(positions, diameters, qi, qj, repulsion, attraction):
    """Cortex3D force exerted by agent ``qj`` on agent ``qi`` per pair.

    Returns an ``(npairs, 3)`` array.  Overlapping spheres repel with a
    linear elastic term (``repulsion``) and adhere with a sqrt-overlap
    term (``attraction``); coincident centers are pushed apart along the
    x axis, oriented by the pair's index order so the force stays
    antisymmetric.
    """
    delta = positions[qi] - positions[qj]
    dist = np.linalg.norm(delta, axis=1)
    r_sum = (diameters[qi] + diameters[qj]) / 2.0
    overlap = r_sum - dist
    # Coincident centers: push apart along the x axis, oriented by the
    # pair's index order so the force stays antisymmetric.
    degenerate = dist < 1e-12
    safe_dist = np.where(degenerate, 1.0, dist)
    direction = delta / safe_dist[:, None]
    if np.any(degenerate):
        sign = np.where(qi < qj, 1.0, -1.0)[degenerate]
        direction[degenerate] = 0.0
        direction[degenerate, 0] = sign

    r_eff = (diameters[qi] * diameters[qj]) / (2.0 * np.maximum(r_sum, 1e-12))
    pos_overlap = np.maximum(overlap, 0.0)
    magnitude = (
        repulsion * pos_overlap
        - attraction * np.sqrt(r_eff * pos_overlap)
    )
    magnitude = np.where(overlap > 0, magnitude, 0.0)
    return magnitude[:, None] * direction


def force_csr(positions, diameters, indptr, indices, active=None,
              pair_fn=None, repulsion=2.0, attraction=0.4):
    """Net force on every agent from its CSR neighbors (full-array path).

    ``active`` masks the agents whose forces are computed (static agents
    are excluded by the caller when §5 detection is enabled; inactive
    agents receive zero net force).  ``pair_fn`` lets
    :class:`~repro.core.force.InteractionForce` subclasses inject their
    overridden pairwise law; when ``None`` the stock :func:`pair_forces`
    runs with ``repulsion``/``attraction``.

    Returns ``(net_force (n,3), nonzero_counts (n,), pairs_evaluated)``.
    """
    n = len(positions)
    net = np.zeros((n, 3))
    nonzero = np.zeros(n, dtype=np.int64)
    if n == 0 or len(indices) == 0:
        return net, nonzero, 0

    counts = np.diff(indptr)
    qi_all = np.repeat(np.arange(n, dtype=np.int64), counts)
    if active is not None:
        keep = active[qi_all]
        qi, qj = qi_all[keep], indices[keep]
    else:
        qi, qj = qi_all, indices
    if len(qi) == 0:
        return net, nonzero, 0

    if pair_fn is not None:
        f = pair_fn(positions, diameters, qi, qj)
    else:
        f = pair_forces(positions, diameters, qi, qj, repulsion, attraction)
    # Accumulate with bincount per component (much faster than the
    # unbuffered np.add.at).
    for c in range(3):
        net[:, c] = np.bincount(qi, weights=f[:, c], minlength=n)
    mag_nonzero = (
        np.abs(f[:, 0]) + np.abs(f[:, 1]) + np.abs(f[:, 2])
    ) > FORCE_EPSILON
    nonzero = np.bincount(qi, weights=mag_nonzero, minlength=n).astype(np.int64)
    return net, nonzero, len(qi)


def _chunk_pairs(indptr, indices, lo, hi):
    """CSR pair lists restricted to rows [lo, hi)."""
    start, stop = int(indptr[lo]), int(indptr[hi])
    counts = np.diff(indptr[lo : hi + 1])
    qi = np.repeat(np.arange(lo, hi, dtype=np.int64), counts)
    return qi, indices[start:stop]


def force_rows(positions, diameters, indptr, indices, active,
               net_out, nz_out, lo, hi, pair_fn=None,
               repulsion=2.0, attraction=0.4) -> int:
    """Net force + nonzero counts for rows ``[lo, hi)`` (chunk path).

    Writes into preallocated ``net_out[lo:hi]`` / ``nz_out[lo:hi]``
    (shared-memory views under the process backend) and returns the
    number of pairs evaluated.  Pairs of one row are summed in the same
    sequential order as the full-array bincount of :func:`force_csr`, and
    rows are written to disjoint slices, so chunked execution is bitwise
    identical to the full-array call.
    """
    qi, qj = _chunk_pairs(indptr, indices, lo, hi)
    if active is not None:
        keep = active[qi]
        qi, qj = qi[keep], qj[keep]
    rows = hi - lo
    if len(qi) == 0:
        net_out[lo:hi] = 0.0
        nz_out[lo:hi] = 0
        return 0
    if pair_fn is not None:
        f = pair_fn(positions, diameters, qi, qj)
    else:
        f = pair_forces(positions, diameters, qi, qj, repulsion, attraction)
    local = qi - lo
    for c in range(3):
        net_out[lo:hi, c] = np.bincount(local, weights=f[:, c],
                                        minlength=rows)
    mag_nonzero = (
        np.abs(f[:, 0]) + np.abs(f[:, 1]) + np.abs(f[:, 2])
    ) > FORCE_EPSILON
    nz_out[lo:hi] = np.bincount(local, weights=mag_nonzero,
                                minlength=rows).astype(np.int64)
    return len(qi)


def displace(positions, moved_flags, net_force, dt,
             max_displacement) -> np.ndarray:
    """Forward-Euler displacement with clamping; returns the moved mask.

    Shared by the serial backend (full arrays) and the process backend's
    chunk kernel (row slices): every operation here is row-elementwise,
    so chunked execution is bitwise identical to the full-array call.
    """
    disp = net_force * dt
    norm = np.linalg.norm(disp, axis=1)
    too_far = norm > max_displacement
    if np.any(too_far):
        disp[too_far] *= (max_displacement / norm[too_far])[:, None]
    moved_now = norm > MOVE_EPSILON
    positions[moved_now] += disp[moved_now]
    moved_flags |= moved_now
    return moved_now


def diffuse(concentration, voxel_size, diffusion_coefficient, decay, dt):
    """One explicit diffusion-decay stencil update (Neumann boundaries).

    Returns the new concentration array; the input is not modified.
    Zero-flux boundaries are realized by edge replication, equivalent to
    clamping the 7-point stencil's neighbor indices at the faces.
    """
    c = concentration
    # Neumann (zero-flux) boundaries via edge replication.
    p = np.pad(c, 1, mode="edge")
    lap = (
        p[2:, 1:-1, 1:-1] + p[:-2, 1:-1, 1:-1]
        + p[1:-1, 2:, 1:-1] + p[1:-1, :-2, 1:-1]
        + p[1:-1, 1:-1, 2:] + p[1:-1, 1:-1, :-2]
        - 6.0 * c
    ) / voxel_size**2
    return c + dt * (diffusion_coefficient * lap - decay * c)


class NumpyKernelBackend(KernelBackend):
    """The reference backend: dispatches straight to this module.

    Always available, never compiles, and — because the core call sites
    delegate to the very same functions — bitwise identical to running
    without any kernel dispatch at all.
    """

    name = "numpy"
    compiled = False

    def force(self, force_model, positions, diameters, indptr, indices,
              active=None):
        """Full-array CSR force via :func:`force_csr` (honors overridden
        ``pair_forces`` on force-model subclasses)."""
        self._count()
        return force_csr(positions, diameters, indptr, indices, active,
                         pair_fn=force_model.pair_forces)

    def force_rows(self, force_model, positions, diameters, indptr, indices,
                   active, net_out, nz_out, lo, hi) -> int:
        """Chunked CSR force via :func:`force_rows`."""
        self._count()
        return force_rows(positions, diameters, indptr, indices, active,
                          net_out, nz_out, lo, hi,
                          pair_fn=force_model.pair_forces)

    def displace(self, positions, moved_flags, net_force, dt,
                 max_displacement):
        """Full-array displacement via :func:`displace`."""
        self._count()
        return displace(positions, moved_flags, net_force, dt,
                        max_displacement)

    def displace_rows(self, positions, moved_flags, net_force, dt,
                      max_displacement, lo, hi) -> None:
        """Row-range displacement (row-elementwise, so slicing is exact)."""
        self._count()
        displace(positions[lo:hi], moved_flags[lo:hi], net_force[lo:hi],
                 dt, max_displacement)

    def diffuse(self, concentration, voxel_size, diffusion_coefficient,
                decay, dt):
        """Stencil update via :func:`diffuse`."""
        self._count()
        return diffuse(concentration, voxel_size, diffusion_coefficient,
                       decay, dt)
