"""Numba JIT kernels: compiled CPU backend for the three hot loops.

Re-expresses the :mod:`repro.kernels.numpy_ref` math as explicit loops
under ``@numba.njit(parallel=True, fastmath=False)``.  ``fastmath`` stays
off so LLVM may not reassociate floating point — the per-row inner loop
accumulates pairs in ascending CSR order, exactly like the reference
``np.bincount``, which keeps the deviation from the reference down to
instruction-scheduling noise (see ``KERNEL_TOLERANCES`` in
:mod:`repro.kernels.api`).

This module imports cleanly without numba installed: the ``@njit``
decorators degrade to identity and :class:`NumbaKernelBackend` raises
``ImportError`` from its constructor, which
:func:`repro.kernels.dispatch.make_kernels` converts into a warning plus
a NumPy fallback.  Compilation is lazy — the first kernel call (or an
explicit :meth:`~NumbaKernelBackend.warm_up`) pays the JIT cost, which is
accumulated into ``compile_seconds``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.kernels import numpy_ref
from repro.kernels.api import (
    FORCE_EPSILON,
    MOVE_EPSILON,
    KernelBackend,
    _is_plain_cortex3d,
)

__all__ = ["NUMBA_AVAILABLE", "NumbaKernelBackend"]

try:
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised via dispatch tests
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):
        """Identity stand-in so this module imports without numba."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap

    prange = range


@njit(parallel=True, fastmath=False, cache=False)
def _force_rows_jit(positions, diameters, indptr, indices, active,
                    use_active, repulsion, attraction, net, nz, lo, hi):
    """Cortex3D CSR force over rows [lo, hi); returns pairs evaluated.

    Rows run in parallel; each row's pairs accumulate sequentially in
    ascending CSR order (the reference bincount order).
    """
    pairs = 0
    for i in prange(lo, hi):
        fx = 0.0
        fy = 0.0
        fz = 0.0
        count = 0
        row_pairs = 0
        if not use_active or active[i]:
            for k in range(indptr[i], indptr[i + 1]):
                j = indices[k]
                dx = positions[i, 0] - positions[j, 0]
                dy = positions[i, 1] - positions[j, 1]
                dz = positions[i, 2] - positions[j, 2]
                dist = np.sqrt(dx * dx + dy * dy + dz * dz)
                r_sum = (diameters[i] + diameters[j]) / 2.0
                overlap = r_sum - dist
                row_pairs += 1
                if overlap > 0.0:
                    if dist < 1e-12:
                        # Coincident centers: push apart along x, oriented
                        # by index order (antisymmetric).
                        ux = 1.0 if i < j else -1.0
                        uy = 0.0
                        uz = 0.0
                    else:
                        ux = dx / dist
                        uy = dy / dist
                        uz = dz / dist
                    r_eff = (diameters[i] * diameters[j]) / (
                        2.0 * max(r_sum, 1e-12)
                    )
                    magnitude = (
                        repulsion * overlap
                        - attraction * np.sqrt(r_eff * overlap)
                    )
                    gx = magnitude * ux
                    gy = magnitude * uy
                    gz = magnitude * uz
                    fx += gx
                    fy += gy
                    fz += gz
                    if abs(gx) + abs(gy) + abs(gz) > FORCE_EPSILON:
                        count += 1
        net[i, 0] = fx
        net[i, 1] = fy
        net[i, 2] = fz
        nz[i] = count
        pairs += row_pairs
    return pairs


@njit(parallel=True, fastmath=False, cache=False)
def _displace_rows_jit(positions, moved, net, dt, max_displacement, lo, hi):
    """Clamped forward-Euler displacement for rows [lo, hi), in place."""
    for i in prange(lo, hi):
        dx = net[i, 0] * dt
        dy = net[i, 1] * dt
        dz = net[i, 2] * dt
        norm = np.sqrt(dx * dx + dy * dy + dz * dz)
        if norm > max_displacement:
            scale = max_displacement / norm
            dx *= scale
            dy *= scale
            dz *= scale
        if norm > MOVE_EPSILON:
            positions[i, 0] += dx
            positions[i, 1] += dy
            positions[i, 2] += dz
            moved[i] = True


@njit(parallel=True, fastmath=False, cache=False)
def _diffuse_jit(c, out, voxel_size, diffusion_coefficient, decay, dt):
    """7-point diffusion-decay stencil with clamped (Neumann) neighbors."""
    nx, ny, nz_ = c.shape
    h2 = voxel_size * voxel_size
    for i in prange(nx):
        ip = i + 1 if i + 1 < nx else i
        im = i - 1 if i > 0 else i
        for j in range(ny):
            jp = j + 1 if j + 1 < ny else j
            jm = j - 1 if j > 0 else j
            for k in range(nz_):
                kp = k + 1 if k + 1 < nz_ else k
                km = k - 1 if k > 0 else k
                lap = (
                    c[ip, j, k] + c[im, j, k]
                    + c[i, jp, k] + c[i, jm, k]
                    + c[i, j, kp] + c[i, j, km]
                    - 6.0 * c[i, j, k]
                ) / h2
                out[i, j, k] = c[i, j, k] + dt * (
                    diffusion_coefficient * lap - decay * c[i, j, k]
                )


class NumbaKernelBackend(KernelBackend):
    """CPU-compiled backend (``@njit(parallel=True, fastmath=False)``).

    Hard-codes the stock Cortex3D force law; simulations running an
    :class:`~repro.core.force.InteractionForce` *subclass* transparently
    fall back to the NumPy reference path for the force kernel (counted
    in :attr:`~repro.kernels.api.KernelBackend.fallbacks`).
    """

    name = "numba"
    compiled = True

    def __init__(self):
        if not NUMBA_AVAILABLE:
            raise ImportError("numba is not installed")
        super().__init__()
        self._warm = False

    def warm_up(self) -> None:
        """Compile all three kernels on tiny inputs; time goes to
        ``compile_seconds``.  Idempotent."""
        if self._warm:
            return
        t0 = time.perf_counter()
        pos = np.zeros((2, 3))
        pos[1, 0] = 1.0
        dia = np.full(2, 4.0)
        indptr = np.array([0, 1, 2], dtype=np.int64)
        indices = np.array([1, 0], dtype=np.int64)
        active = np.ones(2, dtype=np.bool_)
        net = np.zeros((2, 3))
        nz = np.zeros(2, dtype=np.int64)
        _force_rows_jit(pos, dia, indptr, indices, active, True,
                        2.0, 0.4, net, nz, 0, 2)
        moved = np.zeros(2, dtype=np.bool_)
        _displace_rows_jit(pos, moved, net, 0.01, 3.0, 0, 2)
        c = np.zeros((2, 2, 2))
        _diffuse_jit(c, np.empty_like(c), 1.0, 0.5, 0.0, 0.1)
        self.compile_seconds += time.perf_counter() - t0
        self._warm = True

    # -- mechanics ------------------------------------------------------- #

    def _force_into(self, force_model, positions, diameters, indptr,
                    indices, active, net, nz, lo, hi) -> int:
        if not _is_plain_cortex3d(force_model):
            # Subclassed force law: the compiled kernel cannot express it.
            self.fallbacks += 1
            return numpy_ref.force_rows(
                positions, diameters, indptr, indices, active,
                net, nz, lo, hi, pair_fn=force_model.pair_forces,
            )
        self.warm_up()
        use_active = active is not None
        if not use_active:
            active = np.empty(0, dtype=np.bool_)
        return int(_force_rows_jit(
            np.ascontiguousarray(positions), diameters, indptr, indices,
            active, use_active, force_model.repulsion,
            force_model.attraction, net, nz, lo, hi,
        ))

    def force(self, force_model, positions, diameters, indptr, indices,
              active=None):
        """Full-array CSR force through the compiled row kernel."""
        self._count()
        n = len(positions)
        net = np.zeros((n, 3))
        nz = np.zeros(n, dtype=np.int64)
        if n == 0 or len(indices) == 0:
            return net, nz, 0
        pairs = self._force_into(force_model, positions, diameters, indptr,
                                 indices, active, net, nz, 0, n)
        return net, nz, pairs

    def force_rows(self, force_model, positions, diameters, indptr, indices,
                   active, net_out, nz_out, lo, hi) -> int:
        """Chunked CSR force writing into shared-memory views."""
        self._count()
        return self._force_into(force_model, positions, diameters, indptr,
                                indices, active, net_out, nz_out, lo, hi)

    def displace(self, positions, moved_flags, net_force, dt,
                 max_displacement):
        """Full-array compiled displacement."""
        self.displace_rows(positions, moved_flags, net_force, dt,
                           max_displacement, 0, len(positions))

    def displace_rows(self, positions, moved_flags, net_force, dt,
                      max_displacement, lo, hi) -> None:
        """Row-range compiled displacement, in place."""
        self._count()
        self.warm_up()
        _displace_rows_jit(positions, moved_flags, net_force, float(dt),
                           float(max_displacement), lo, hi)

    # -- diffusion ------------------------------------------------------- #

    def diffuse(self, concentration, voxel_size, diffusion_coefficient,
                decay, dt):
        """Compiled stencil update; returns the new concentration."""
        self._count()
        self.warm_up()
        out = np.empty_like(concentration)
        _diffuse_jit(concentration, out, float(voxel_size),
                     float(diffusion_coefficient), float(decay), float(dt))
        return out
