"""CuPy GPU kernels: device-side backend for the three hot loops.

Implements the executable counterpart of the :mod:`repro.gpu.device`
roofline model, following *GPU Acceleration of 3D Agent-Based Biological
Simulations* (PAPERS.md): the CSR force kernel is a one-thread-per-agent
``cupy.RawKernel`` (each thread walks its row's neighbor list, so the
per-row accumulation order matches the NumPy reference bincount), and
displacement / diffusion are expressed with CuPy array ops.

Host arrays in, host arrays out: the engine's columns live in host (or
POSIX shared) memory, so every call pays an H2D/D2H transfer.  That is
the paper's hybrid-offload trade-off — worthwhile for large dense
populations, counterproductive for small ones (see
``docs/performance_model.md``).  Under the *process* backend's chunked
row kernels, the GPU would be re-launched per chunk; chunking is a CPU
work-distribution concept, so ``force_rows``/``displace_rows`` here
simply fall back to the NumPy reference (documented in
``docs/kernels.md``).

This module imports cleanly without cupy (or without a visible device):
:class:`CupyKernelBackend` raises ``ImportError`` from its constructor
and :func:`repro.kernels.dispatch.make_kernels` falls back to NumPy with
a warning.
"""

from __future__ import annotations

import time

import numpy as np

from repro.kernels import numpy_ref
from repro.kernels.api import KernelBackend, _is_plain_cortex3d

__all__ = ["CUPY_AVAILABLE", "cuda_usable", "CupyKernelBackend"]

try:
    import cupy

    CUPY_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised via dispatch tests
    cupy = None
    CUPY_AVAILABLE = False


def cuda_usable() -> bool:
    """Whether cupy is importable *and* a CUDA device is reachable."""
    if not CUPY_AVAILABLE:
        return False
    try:  # pragma: no cover - requires a GPU
        return int(cupy.cuda.runtime.getDeviceCount()) > 0
    except Exception:  # pragma: no cover - driver/runtime missing
        return False


#: One thread per agent row: walk the CSR neighbor list sequentially (the
#: reference accumulation order), Cortex3D pair math in double precision.
_FORCE_KERNEL_SRC = r"""
extern "C" __global__
void csr_force(const double* pos, const double* dia,
               const long long* indptr, const long long* indices,
               const bool* active, const int use_active,
               const double repulsion, const double attraction,
               const int n, double* net, long long* nz,
               unsigned long long* pairs) {
    int i = blockDim.x * blockIdx.x + threadIdx.x;
    if (i >= n) return;
    double fx = 0.0, fy = 0.0, fz = 0.0;
    long long count = 0;
    unsigned long long row_pairs = 0;
    if (!use_active || active[i]) {
        for (long long k = indptr[i]; k < indptr[i + 1]; ++k) {
            long long j = indices[k];
            double dx = pos[3 * i] - pos[3 * j];
            double dy = pos[3 * i + 1] - pos[3 * j + 1];
            double dz = pos[3 * i + 2] - pos[3 * j + 2];
            double dist = sqrt(dx * dx + dy * dy + dz * dz);
            double r_sum = (dia[i] + dia[j]) / 2.0;
            double overlap = r_sum - dist;
            row_pairs += 1;
            if (overlap > 0.0) {
                double ux, uy, uz;
                if (dist < 1e-12) {
                    ux = (i < j) ? 1.0 : -1.0; uy = 0.0; uz = 0.0;
                } else {
                    ux = dx / dist; uy = dy / dist; uz = dz / dist;
                }
                double r_eff = (dia[i] * dia[j]) / (2.0 * max(r_sum, 1e-12));
                double mag = repulsion * overlap
                           - attraction * sqrt(r_eff * overlap);
                double gx = mag * ux, gy = mag * uy, gz = mag * uz;
                fx += gx; fy += gy; fz += gz;
                if (fabs(gx) + fabs(gy) + fabs(gz) > 1e-12) count += 1;
            }
        }
    }
    net[3 * i] = fx; net[3 * i + 1] = fy; net[3 * i + 2] = fz;
    nz[i] = count;
    if (row_pairs) atomicAdd(pairs, row_pairs);
}
"""


class CupyKernelBackend(KernelBackend):
    """GPU backend (CuPy raw kernel + array ops), host arrays in/out.

    Like the Numba backend it hard-codes the stock Cortex3D force law and
    falls back to the NumPy reference for force-model subclasses.
    """

    name = "cupy"
    compiled = True

    def __init__(self):
        if not cuda_usable():
            raise ImportError("cupy is not installed or no CUDA device is "
                              "reachable")
        super().__init__()
        self._kernel = None

    def warm_up(self) -> None:  # pragma: no cover - requires a GPU
        """Compile the raw CSR force kernel; time goes to
        ``compile_seconds``.  Idempotent."""
        if self._kernel is not None:
            return
        t0 = time.perf_counter()
        self._kernel = cupy.RawKernel(_FORCE_KERNEL_SRC, "csr_force")
        self._kernel.compile()
        self.compile_seconds += time.perf_counter() - t0

    # -- mechanics ------------------------------------------------------- #

    def force(self, force_model, positions, diameters, indptr, indices,
              active=None):  # pragma: no cover - requires a GPU
        """Full-array CSR force on the device; returns host arrays."""
        self._count()
        n = len(positions)
        if n == 0 or len(indices) == 0:
            return np.zeros((n, 3)), np.zeros(n, dtype=np.int64), 0
        if not _is_plain_cortex3d(force_model):
            self.fallbacks += 1
            return numpy_ref.force_csr(
                positions, diameters, indptr, indices, active,
                pair_fn=force_model.pair_forces,
            )
        self.warm_up()
        use_active = active is not None
        d_pos = cupy.asarray(np.ascontiguousarray(positions))
        d_dia = cupy.asarray(diameters)
        d_ip = cupy.asarray(indptr)
        d_ix = cupy.asarray(indices)
        d_act = cupy.asarray(active if use_active
                             else np.zeros(1, dtype=np.bool_))
        d_net = cupy.zeros((n, 3), dtype=cupy.float64)
        d_nz = cupy.zeros(n, dtype=cupy.int64)
        d_pairs = cupy.zeros(1, dtype=cupy.uint64)
        block = 128
        grid = (n + block - 1) // block
        self._kernel(
            (grid,), (block,),
            (d_pos, d_dia, d_ip, d_ix, d_act, np.int32(use_active),
             np.float64(force_model.repulsion),
             np.float64(force_model.attraction),
             np.int32(n), d_net, d_nz, d_pairs),
        )
        return (cupy.asnumpy(d_net), cupy.asnumpy(d_nz),
                int(cupy.asnumpy(d_pairs)[0]))

    def force_rows(self, force_model, positions, diameters, indptr, indices,
                   active, net_out, nz_out, lo, hi) -> int:
        """Chunk path: delegates to the NumPy reference (see module doc —
        per-chunk GPU launches would be pure overhead)."""
        self._count()
        return numpy_ref.force_rows(positions, diameters, indptr, indices,
                                    active, net_out, nz_out, lo, hi,
                                    pair_fn=force_model.pair_forces)

    def displace(self, positions, moved_flags, net_force, dt,
                 max_displacement):  # pragma: no cover - requires a GPU
        """Clamped Euler displacement with CuPy array ops, in place on the
        host arrays."""
        self._count()
        d_net = cupy.asarray(net_force)
        disp = d_net * dt
        norm = cupy.linalg.norm(disp, axis=1)
        too_far = norm > max_displacement
        disp[too_far] *= (max_displacement / norm[too_far])[:, None]
        moved_now = cupy.asnumpy(norm > numpy_ref.MOVE_EPSILON)
        positions[moved_now] += cupy.asnumpy(disp)[moved_now]
        moved_flags |= moved_now

    def displace_rows(self, positions, moved_flags, net_force, dt,
                      max_displacement, lo, hi) -> None:
        """Chunk path: NumPy reference (see module doc)."""
        self._count()
        numpy_ref.displace(positions[lo:hi], moved_flags[lo:hi],
                           net_force[lo:hi], dt, max_displacement)

    # -- diffusion ------------------------------------------------------- #

    def diffuse(self, concentration, voxel_size, diffusion_coefficient,
                decay, dt):  # pragma: no cover - requires a GPU
        """Stencil update on the device; returns a host array."""
        self._count()
        c = cupy.asarray(concentration)
        p = cupy.pad(c, 1, mode="edge")
        lap = (
            p[2:, 1:-1, 1:-1] + p[:-2, 1:-1, 1:-1]
            + p[1:-1, 2:, 1:-1] + p[1:-1, :-2, 1:-1]
            + p[1:-1, 1:-1, 2:] + p[1:-1, 1:-1, :-2]
            - 6.0 * c
        ) / voxel_size**2
        return cupy.asnumpy(
            c + dt * (diffusion_coefficient * lap - decay * c)
        )
