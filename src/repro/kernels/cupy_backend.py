"""CuPy GPU kernels: device-side backend for the three hot loops.

Implements the executable counterpart of the :mod:`repro.gpu.device`
roofline model, following *GPU Acceleration of 3D Agent-Based Biological
Simulations* (PAPERS.md): the CSR force kernel is a one-thread-per-agent
``cupy.RawKernel`` (each thread walks its row's neighbor list, so the
per-row accumulation order matches the NumPy reference bincount), and
displacement / diffusion are expressed with CuPy array ops.

Host arrays in, host arrays out: the engine's columns live in host (or
POSIX shared) memory, so calls pay H2D/D2H transfers.  That is the
paper's hybrid-offload trade-off — worthwhile for large dense
populations, counterproductive for small ones (see
``docs/performance_model.md``).  Device *allocations*, however, are
persistent: :class:`DeviceBufferCache` keeps every device buffer alive
across calls keyed on the ResourceManager's ``structure_version``
(refreshed by the execution backend before each call), so steady-state
steps re-fill existing device memory instead of allocating, and arrays
that are stable between environment rebuilds (the CSR neighbor lists)
skip the upload entirely.  When the device runs out of memory the cache
evicts everything and retries once; if that also fails the call falls
back to the NumPy reference and ``oom_fallbacks`` counts it.

Under the *process* backend's chunked row kernels, the GPU would be
re-launched per chunk; chunking is a CPU work-distribution concept, so
``force_rows``/``displace_rows`` here simply fall back to the NumPy
reference (documented in ``docs/kernels.md``).

This module imports cleanly without cupy (or without a visible device):
:class:`CupyKernelBackend` raises ``ImportError`` from its constructor
and :func:`repro.kernels.dispatch.make_kernels` falls back to NumPy with
a warning.
"""

from __future__ import annotations

import time

import numpy as np

from repro.kernels import numpy_ref
from repro.kernels.api import KernelBackend, _is_plain_cortex3d

__all__ = ["CUPY_AVAILABLE", "cuda_usable", "DeviceBufferCache",
           "CupyKernelBackend"]

try:
    import cupy

    CUPY_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised via dispatch tests
    cupy = None
    CUPY_AVAILABLE = False


def cuda_usable() -> bool:
    """Whether cupy is importable *and* a CUDA device is reachable."""
    if not CUPY_AVAILABLE:
        return False
    try:  # pragma: no cover - requires a GPU
        return int(cupy.cuda.runtime.getDeviceCount()) > 0
    except Exception:  # pragma: no cover - driver/runtime missing
        return False


def _default_oom_errors() -> tuple:
    """The exception types a device allocation raises when memory runs
    out (empty without cupy — the cache is then only usable with an
    explicit ``oom_errors`` argument, which the tests inject)."""
    if not CUPY_AVAILABLE:
        return ()
    errors = [cupy.cuda.memory.OutOfMemoryError]  # pragma: no cover - GPU
    return tuple(errors)  # pragma: no cover - GPU


class DeviceBufferCache:
    """Persistent device buffers keyed on the host ``structure_version``.

    The naive hybrid-offload loop allocates fresh device arrays on every
    kernel call (the ROADMAP open item this closes: "today it
    round-trips host<->device on every call").  This cache makes device
    state persistent along three tiers:

    - :meth:`upload` — a named buffer whose *allocation* survives across
      calls; the data is re-copied each call (host columns mutate every
      step) but steady-state steps never touch the device allocator;
    - :meth:`upload_block` — one upload of a contiguous SoA-arena span
      covering several columns at once (one H2D per domain instead of
      one per column), returning zero-copy device views per column;
    - :meth:`upload_stable` — additionally skips the H2D copy while the
      host array is the *same object* as last time (the CSR neighbor
      lists, which the scheduler reuses between environment rebuilds);
    - :meth:`scratch` — a device-only output buffer (net forces,
      nonzero counts), optionally zero-filled.

    :meth:`sync` must be called with the ResourceManager's
    ``structure_version`` before each kernel call: a version change
    (agents added/removed/re-sorted) invalidates every buffer.

    Out-of-memory handling: an allocation that raises one of
    ``oom_errors`` evicts the whole cache and retries once
    (``oom_evictions`` counts it); a second failure propagates so the
    caller can fall back to the host kernel.  ``xp`` is injectable
    (defaults to cupy) so the cache logic is testable with numpy and a
    fake OOM error on machines without a GPU.
    """

    def __init__(self, xp=None, oom_errors=None):
        if xp is None:  # pragma: no cover - requires a GPU
            xp = cupy
        self.xp = xp
        self.oom_errors = tuple(
            oom_errors if oom_errors is not None else _default_oom_errors()
        )
        #: The ``structure_version`` the cached buffers belong to.
        self.version: int | None = None
        self._buffers: dict[str, object] = {}
        #: name -> (host array, device buffer); holding the host reference
        #: keeps the identity check safe against id() reuse after gc.
        self._stable: dict[str, tuple] = {}
        # --- instrumentation ------------------------------------------- #
        self.allocations = 0
        self.reuses = 0
        #: H2D copies skipped because the stable host array was unchanged.
        self.stable_hits = 0
        #: Whole-cache evictions triggered by device OOM.
        self.oom_evictions = 0

    @property
    def nbytes(self) -> int:
        """Bytes held in persistent device buffers."""
        held = list(self._buffers.values())
        held += [buf for _host, buf in self._stable.values()]
        return int(sum(int(b.nbytes) for b in held))

    def sync(self, structure_version: int) -> None:
        """Invalidate every buffer when the host structure changed."""
        if structure_version != self.version:
            self.clear()
            self.version = structure_version

    def clear(self) -> None:
        """Drop every cached device buffer."""
        self._buffers.clear()
        self._stable.clear()

    def _alloc(self, shape, dtype):
        """Allocate a device array; on OOM evict everything and retry
        once (a second failure propagates to the caller)."""
        try:
            out = self.xp.empty(shape, dtype=dtype)
        except self.oom_errors:
            self.clear()
            self.oom_evictions += 1
            out = self.xp.empty(shape, dtype=dtype)
        self.allocations += 1
        return out

    @staticmethod
    def _copy_in(buf, host) -> None:
        # cupy device arrays take host data via .set(); plain ndarrays
        # (the numpy-injected test configuration) via assignment.
        setter = getattr(buf, "set", None)
        if setter is not None:  # pragma: no cover - requires a GPU
            setter(host)
        else:
            buf[...] = host

    def upload(self, name: str, host) -> object:
        """Device copy of ``host``, reusing the persistent allocation."""
        host = np.ascontiguousarray(host)
        buf = self._buffers.get(name)
        if (buf is None or buf.shape != host.shape
                or buf.dtype != host.dtype):
            buf = self._alloc(host.shape, host.dtype)
            self._buffers[name] = buf
        else:
            self.reuses += 1
        self._copy_in(buf, host)
        return buf

    def upload_block(self, name: str, block, columns: dict) -> dict:
        """Single upload of one contiguous block span covering every
        requested column; returns ``{column: device view}``.

        ``block`` is a host SoA arena's 1-D ``uint8`` backing buffer
        (:attr:`repro.core.arena.SoAArena.block`) and ``columns`` maps
        each column name to ``(byte_offset, dtype, shape)`` — the live
        prefix of that column inside the block.  The minimal span
        containing every column travels with **one** allocation and
        **one** copy, and each returned view reinterprets the device
        bytes in place, so a whole domain reaches the device as a
        single transfer instead of a per-column loop.  (Arena columns
        are 64-byte aligned, so the per-column view offsets stay
        itemsize-aligned for any dtype.)
        """
        if not columns:
            return {}
        spans = {}
        lo, hi = None, 0
        for col, (off, dtype, shape) in columns.items():
            nbytes = int(np.dtype(dtype).itemsize
                         * np.prod(shape, dtype=np.int64))
            spans[col] = (int(off), nbytes)
            lo = int(off) if lo is None else min(lo, int(off))
            hi = max(hi, int(off) + nbytes)
        buf = self.upload(name, block[lo:hi])
        views = {}
        for col, (off, dtype, shape) in columns.items():
            start = spans[col][0] - lo
            flat = buf[start:start + spans[col][1]].view(np.dtype(dtype))
            views[col] = flat.reshape(tuple(int(s) for s in shape))
        return views

    def upload_stable(self, name: str, host) -> object:
        """Like :meth:`upload`, but skip the copy entirely while ``host``
        is the same array object as the previous call (CSR lists)."""
        cached = self._stable.get(name)
        if cached is not None and cached[0] is host:
            self.stable_hits += 1
            return cached[1]
        contiguous = np.ascontiguousarray(host)
        buf = self._alloc(contiguous.shape, contiguous.dtype)
        self._copy_in(buf, contiguous)
        self._stable[name] = (host, buf)
        return buf

    def scratch(self, name: str, shape, dtype, zero: bool = True) -> object:
        """Persistent device-only output buffer of ``shape``/``dtype``."""
        shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        buf = self._buffers.get(name)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = self._alloc(shape, dtype)
            self._buffers[name] = buf
        else:
            self.reuses += 1
        if zero:
            buf[...] = 0
        return buf


#: One thread per agent row: walk the CSR neighbor list sequentially (the
#: reference accumulation order), Cortex3D pair math in double precision.
_FORCE_KERNEL_SRC = r"""
extern "C" __global__
void csr_force(const double* pos, const double* dia,
               const long long* indptr, const long long* indices,
               const bool* active, const int use_active,
               const double repulsion, const double attraction,
               const int n, double* net, long long* nz,
               unsigned long long* pairs) {
    int i = blockDim.x * blockIdx.x + threadIdx.x;
    if (i >= n) return;
    double fx = 0.0, fy = 0.0, fz = 0.0;
    long long count = 0;
    unsigned long long row_pairs = 0;
    if (!use_active || active[i]) {
        for (long long k = indptr[i]; k < indptr[i + 1]; ++k) {
            long long j = indices[k];
            double dx = pos[3 * i] - pos[3 * j];
            double dy = pos[3 * i + 1] - pos[3 * j + 1];
            double dz = pos[3 * i + 2] - pos[3 * j + 2];
            double dist = sqrt(dx * dx + dy * dy + dz * dz);
            double r_sum = (dia[i] + dia[j]) / 2.0;
            double overlap = r_sum - dist;
            row_pairs += 1;
            if (overlap > 0.0) {
                double ux, uy, uz;
                if (dist < 1e-12) {
                    ux = (i < j) ? 1.0 : -1.0; uy = 0.0; uz = 0.0;
                } else {
                    ux = dx / dist; uy = dy / dist; uz = dz / dist;
                }
                double r_eff = (dia[i] * dia[j]) / (2.0 * max(r_sum, 1e-12));
                double mag = repulsion * overlap
                           - attraction * sqrt(r_eff * overlap);
                double gx = mag * ux, gy = mag * uy, gz = mag * uz;
                fx += gx; fy += gy; fz += gz;
                if (fabs(gx) + fabs(gy) + fabs(gz) > 1e-12) count += 1;
            }
        }
    }
    net[3 * i] = fx; net[3 * i + 1] = fy; net[3 * i + 2] = fz;
    nz[i] = count;
    if (row_pairs) atomicAdd(pairs, row_pairs);
}
"""


class CupyKernelBackend(KernelBackend):
    """GPU backend (CuPy raw kernel + array ops), host arrays in/out.

    Like the Numba backend it hard-codes the stock Cortex3D force law and
    falls back to the NumPy reference for force-model subclasses.  Device
    buffers persist across calls in :attr:`buffers` (see
    :class:`DeviceBufferCache`); device OOM falls back to the NumPy
    reference and is counted in ``oom_fallbacks``.
    """

    name = "cupy"
    compiled = True

    def __init__(self):
        if not cuda_usable():
            raise ImportError("cupy is not installed or no CUDA device is "
                              "reachable")
        super().__init__()
        self._kernel = None
        self.buffers = DeviceBufferCache()
        self._soa = None
        self._live_rows = 0

    def bind_arena(self, soa, live_rows) -> None:
        """Remember the engine's SoA arena so :meth:`force` can ship the
        mechanics columns as one whole-domain block upload
        (:meth:`DeviceBufferCache.upload_block`) instead of a per-column
        transfer loop."""
        self._soa = soa
        self._live_rows = int(live_rows)

    def warm_up(self) -> None:  # pragma: no cover - requires a GPU
        """Compile the raw CSR force kernel; time goes to
        ``compile_seconds``.  Idempotent."""
        if self._kernel is not None:
            return
        t0 = time.perf_counter()
        self._kernel = cupy.RawKernel(_FORCE_KERNEL_SRC, "csr_force")
        self._kernel.compile()
        self.compile_seconds += time.perf_counter() - t0

    # -- mechanics ------------------------------------------------------- #

    def force(self, force_model, positions, diameters, indptr, indices,
              active=None):  # pragma: no cover - requires a GPU
        """Full-array CSR force on the device; returns host arrays."""
        self._count()
        n = len(positions)
        if n == 0 or len(indices) == 0:
            return np.zeros((n, 3)), np.zeros(n, dtype=np.int64), 0
        if not _is_plain_cortex3d(force_model):
            self.fallbacks += 1
            return numpy_ref.force_csr(
                positions, diameters, indptr, indices, active,
                pair_fn=force_model.pair_forces,
            )
        self.warm_up()
        use_active = active is not None
        try:
            cache = self.buffers
            cache.sync(self.structure_version)
            soa = self._soa
            if (soa is not None and soa.owns("position", positions)
                    and soa.owns("diameter", diameters)):
                # Whole-domain path: both mechanics columns live in the
                # SoA arena block, so one contiguous span covers them —
                # a single H2D transfer instead of one per column.
                d_cols = cache.upload_block("arena:block", soa.block, {
                    "position": (soa.offsets["position"],
                                 positions.dtype, positions.shape),
                    "diameter": (soa.offsets["diameter"],
                                 diameters.dtype, diameters.shape),
                })
                d_pos, d_dia = d_cols["position"], d_cols["diameter"]
            else:
                d_pos = cache.upload("position", positions)
                d_dia = cache.upload("diameter", diameters)
            d_ip = cache.upload_stable("csr:indptr", indptr)
            d_ix = cache.upload_stable("csr:indices", indices)
            d_act = cache.upload(
                "active", active if use_active
                else np.zeros(1, dtype=np.bool_))
            d_net = cache.scratch("net", (n, 3), np.float64)
            d_nz = cache.scratch("nz", (n,), np.int64)
            d_pairs = cache.scratch("pairs", (1,), np.uint64)
            block = 128
            grid = (n + block - 1) // block
            self._kernel(
                (grid,), (block,),
                (d_pos, d_dia, d_ip, d_ix, d_act, np.int32(use_active),
                 np.float64(force_model.repulsion),
                 np.float64(force_model.attraction),
                 np.int32(n), d_net, d_nz, d_pairs),
            )
            return (cupy.asnumpy(d_net), cupy.asnumpy(d_nz),
                    int(cupy.asnumpy(d_pairs)[0]))
        except self.buffers.oom_errors:
            self.oom_fallbacks += 1
            self.buffers.clear()
            return numpy_ref.force_csr(
                positions, diameters, indptr, indices, active,
                pair_fn=force_model.pair_forces,
            )

    def force_rows(self, force_model, positions, diameters, indptr, indices,
                   active, net_out, nz_out, lo, hi) -> int:
        """Chunk path: delegates to the NumPy reference (see module doc —
        per-chunk GPU launches would be pure overhead)."""
        self._count()
        return numpy_ref.force_rows(positions, diameters, indptr, indices,
                                    active, net_out, nz_out, lo, hi,
                                    pair_fn=force_model.pair_forces)

    def displace(self, positions, moved_flags, net_force, dt,
                 max_displacement):  # pragma: no cover - requires a GPU
        """Clamped Euler displacement with CuPy array ops, in place on the
        host arrays."""
        self._count()
        try:
            cache = self.buffers
            cache.sync(self.structure_version)
            d_net = cache.upload("net_force", net_force)
            disp = d_net * dt
            norm = cupy.linalg.norm(disp, axis=1)
            too_far = norm > max_displacement
            disp[too_far] *= (max_displacement / norm[too_far])[:, None]
            moved_now = cupy.asnumpy(norm > numpy_ref.MOVE_EPSILON)
            positions[moved_now] += cupy.asnumpy(disp)[moved_now]
            moved_flags |= moved_now
        except self.buffers.oom_errors:
            self.oom_fallbacks += 1
            self.buffers.clear()
            numpy_ref.displace(positions, moved_flags, net_force, dt,
                               max_displacement)

    def displace_rows(self, positions, moved_flags, net_force, dt,
                      max_displacement, lo, hi) -> None:
        """Chunk path: NumPy reference (see module doc)."""
        self._count()
        numpy_ref.displace(positions[lo:hi], moved_flags[lo:hi],
                           net_force[lo:hi], dt, max_displacement)

    # -- diffusion ------------------------------------------------------- #

    def diffuse(self, concentration, voxel_size, diffusion_coefficient,
                decay, dt):  # pragma: no cover - requires a GPU
        """Stencil update on the device; returns a host array.

        Grid shape is independent of the agent structure, so the
        concentration buffer is *not* keyed on ``structure_version`` —
        no :meth:`DeviceBufferCache.sync` here, just the persistent
        allocation."""
        self._count()
        try:
            c = self.buffers.upload("diffusion:concentration", concentration)
            p = cupy.pad(c, 1, mode="edge")
            lap = (
                p[2:, 1:-1, 1:-1] + p[:-2, 1:-1, 1:-1]
                + p[1:-1, 2:, 1:-1] + p[1:-1, :-2, 1:-1]
                + p[1:-1, 1:-1, 2:] + p[1:-1, 1:-1, :-2]
                - 6.0 * c
            ) / voxel_size**2
            return cupy.asnumpy(
                c + dt * (diffusion_coefficient * lap - decay * c)
            )
        except self.buffers.oom_errors:
            self.oom_fallbacks += 1
            self.buffers.clear()
            return numpy_ref.diffuse(concentration, voxel_size,
                                     diffusion_coefficient, decay, dt)
