"""Backend selection: probe availability, resolve, fall back with warnings.

``Param.kernel_backend`` names a backend ("numpy" | "numba" | "cupy") or
asks for the best available one ("auto").  Resolution happens once, at
:class:`~repro.core.simulation.Simulation` construction, through
:func:`make_kernels`:

- an explicitly requested backend that is unavailable **never raises an
  ImportError** — it warns (:class:`KernelBackendWarning`) and falls
  back to the NumPy reference, so a model parameterized for a machine
  with numba/cupy still runs anywhere;
- ``"auto"`` probes cupy (with a reachable device) first, then numba,
  then settles on NumPy — with a warning when no compiled backend is
  available, so silent slow runs are visible.

Workers of the process backend call :func:`worker_kernels` with the
parent's *resolved* backend name and cache the instance at module level,
so each worker owns one dispatch table (and one JIT compilation) for the
life of the pool.
"""

from __future__ import annotations

import importlib
import warnings

from repro.kernels.api import KernelBackend

__all__ = [
    "KNOWN_BACKENDS",
    "KernelBackendWarning",
    "available_backends",
    "make_kernels",
    "worker_kernels",
]

#: Backend names accepted by ``Param.kernel_backend`` (plus "auto").
KNOWN_BACKENDS = ("numpy", "numba", "cupy")


class KernelBackendWarning(UserWarning):
    """A requested compiled kernel backend is unavailable; NumPy runs."""


def _probe(name: str) -> bool:
    """Whether backend ``name`` can actually be constructed here.

    Monkeypatch point for the dispatch tests (simulating absent numba /
    cupy); results are not cached so a patched probe takes effect
    immediately.
    """
    if name == "numpy":
        return True
    if name == "numba":
        try:
            importlib.import_module("numba")
            return True
        except ImportError:
            return False
    if name == "cupy":
        from repro.kernels.cupy_backend import cuda_usable

        return cuda_usable()
    return False


def available_backends() -> dict[str, bool]:
    """Availability of every known backend on this machine."""
    return {name: _probe(name) for name in KNOWN_BACKENDS}


def _construct(name: str) -> KernelBackend:
    if name == "numba":
        from repro.kernels.numba_jit import NumbaKernelBackend

        return NumbaKernelBackend()
    if name == "cupy":
        from repro.kernels.cupy_backend import CupyKernelBackend

        return CupyKernelBackend()
    from repro.kernels.numpy_ref import NumpyKernelBackend

    return NumpyKernelBackend()


def _resolve(requested: str) -> tuple[str, str | None]:
    """Map a requested backend to an available one.

    Returns ``(name, warning)`` where ``warning`` is a message to emit
    (None when the request was satisfied silently).
    """
    if requested == "auto":
        if _probe("cupy"):
            return "cupy", None
        if _probe("numba"):
            return "numba", None
        return "numpy", (
            "kernel_backend='auto': no compiled backend is available "
            "(numba and cupy are not importable/usable); using the NumPy "
            "reference kernels"
        )
    if requested in KNOWN_BACKENDS and not _probe(requested):
        return "numpy", (
            f"kernel_backend='{requested}' is not available on this "
            "machine; falling back to the NumPy reference kernels"
        )
    return requested, None


def make_kernels(requested: str, registry=None, warn: bool = True
                 ) -> KernelBackend:
    """Resolve + construct the kernel backend for a simulation.

    ``registry`` (a :class:`repro.obs.core.MetricsRegistry`) gets the
    ``kernel:backend`` gauge and ``kernel:{calls,compile_seconds}``
    callback metrics bound to the returned instance.  ``warn=False``
    silences the fallback warning (used by workers, which inherit the
    parent's already-warned resolution).
    """
    name, message = _resolve(requested)
    if message and warn:
        warnings.warn(message, KernelBackendWarning, stacklevel=2)
    try:
        backend = _construct(name)
    except ImportError:
        # The probe raced reality (e.g. numba imports but is broken);
        # honor the no-ImportError contract.
        if warn:
            warnings.warn(
                f"kernel backend '{name}' failed to construct; falling "
                "back to the NumPy reference kernels",
                KernelBackendWarning, stacklevel=2,
            )
        backend = _construct("numpy")
    if registry is not None:
        registry.gauge("kernel:backend").set(backend.name)
        registry.register_callback("kernel:calls", lambda: backend.calls)
        registry.register_callback("kernel:compile_seconds",
                                   lambda: backend.compile_seconds)
        registry.register_callback("kernel:fallbacks",
                                   lambda: backend.fallbacks)
        registry.register_callback("kernel:oom_fallbacks",
                                   lambda: backend.oom_fallbacks)
    return backend


#: Per-process cache for worker-side dispatch tables (one instance — and
#: one JIT compilation — per worker process, keyed by resolved name).
_WORKER_CACHE: dict[str, KernelBackend] = {}


def worker_kernels(name: str) -> KernelBackend:
    """The worker-side kernel backend for the parent's resolved ``name``.

    Cached at module level so persistent pool workers construct (and JIT)
    once; resolution re-runs quietly, so a worker missing the parent's
    backend degrades to NumPy instead of crashing the pool.
    """
    backend = _WORKER_CACHE.get(name)
    if backend is None:
        backend = make_kernels(name, registry=None, warn=False)
        _WORKER_CACHE[name] = backend
    return backend
