"""Pluggable kernel backends for the three hot array kernels.

The package behind ``Param.kernel_backend``: one narrow interface
(:mod:`repro.kernels.api`) over the pairwise CSR force, the clamped
displacement integration, and the 7-point diffusion stencil, with a
bitwise NumPy reference (:mod:`repro.kernels.numpy_ref`), a Numba JIT
CPU backend (:mod:`repro.kernels.numba_jit`), a CuPy GPU backend
(:mod:`repro.kernels.cupy_backend`), and availability-probing selection
(:mod:`repro.kernels.dispatch`).  See ``docs/kernels.md``.
"""

from repro.kernels.api import (
    FORCE_EPSILON,
    KERNEL_TOLERANCES,
    MOVE_EPSILON,
    KernelBackend,
    KernelTolerance,
    tolerance_for,
)
from repro.kernels.dispatch import (
    KNOWN_BACKENDS,
    KernelBackendWarning,
    available_backends,
    make_kernels,
    worker_kernels,
)

__all__ = [
    "FORCE_EPSILON",
    "MOVE_EPSILON",
    "KERNEL_TOLERANCES",
    "KernelTolerance",
    "tolerance_for",
    "KernelBackend",
    "KNOWN_BACKENDS",
    "KernelBackendWarning",
    "available_backends",
    "make_kernels",
    "worker_kernels",
]
