"""Simulated ptmalloc2-like and jemalloc-like allocators (paper §6.12).

The paper compares BioDynaMo's pool allocator against glibc ptmalloc2 and
jemalloc (Fig. 13); both are native libraries, so we model their *policies*
on the simulated address space:

``PtmallocLike``
    One arena per NUMA domain (our proxy for first-touch placement), a bump
    "top" pointer, per-chunk 16-byte headers, 16-byte size-class rounding,
    and LIFO bins per size class guarded by an arena lock (a constant extra
    cost per operation).  All object sizes share the arena, so consecutive
    allocations of different types interleave in memory — the locality
    property the pool allocator's columnar layout avoids.

``JemallocLike``
    Per-thread arenas with slab ("run") allocation: each (thread, size
    class) carves objects from slabs, so same-type objects are locally
    contiguous and lock traffic is low, at the price of size-class internal
    fragmentation and per-slab metadata.
"""

from __future__ import annotations

import numpy as np

from repro.mem.address_space import AddressSpace
from repro.mem.base import Allocator

__all__ = ["PtmallocLike", "JemallocLike"]

_PT_HEADER = 16
_PT_COST_ALLOC = 95.0   # lock + bin lookup
_PT_COST_FREE = 85.0
_PT_ARENA_CHUNK = 1 << 17  # per-arena growth granularity (touched pages)

_JE_COST_ALLOC = 70.0   # mostly lock-free fast path
_JE_COST_FREE = 62.0
_JE_SLAB_MIN = 1 << 14
_JE_SLAB_META_FRACTION = 0.02
_JE_LARGE_THRESHOLD = 1 << 14


def _pt_size_class(size: int) -> int:
    """ptmalloc2 rounds requests to 16-byte multiples (incl. header)."""
    return -(-(size + _PT_HEADER) // 16) * 16


def _je_size_class(size: int) -> int:
    """jemalloc size classes: 16-byte spacing to 128, then 1.25x spacing."""
    if size <= 16:
        return 16
    if size <= 128:
        return -(-size // 16) * 16
    # Four classes per power-of-two group.
    group = 1 << (int(size - 1).bit_length() - 1)
    step = group // 4
    return -(-size // step) * step


class PtmallocLike(Allocator):
    """glibc ptmalloc2 model: shared arena, binned free lists, chunk headers."""

    name = "ptmalloc2"
    #: Arena mutexes serialize most concurrent malloc/free traffic.
    parallel_scalability = 0.08

    def __init__(self, address_space: AddressSpace):
        super().__init__()
        self.space = address_space
        # Arena bump cursors: (domain, arena index) -> [top, room].
        self._arenas: dict[tuple[int, int], list[int]] = {}
        # Per-domain bins: size class -> LIFO list of user addresses.
        self._bins: list[dict[int, list[int]]] = [
            {} for _ in range(address_space.num_domains)
        ]

    def _bump(self, domain: int, arena: int, cls: int) -> int:
        state = self._arenas.setdefault((domain, arena), [0, 0])
        if state[1] < cls:
            chunk = max(_PT_ARENA_CHUNK, cls)
            state[0] = self.space.reserve(chunk, domain)
            state[1] = chunk
            self.stats.note_reserved(chunk)
        addr = state[0] + _PT_HEADER
        state[0] += cls
        state[1] -= cls
        return addr

    def allocate(self, size: int, domain: int = 0, thread: int = 0) -> int:
        cls = _pt_size_class(size)
        self.stats.cycles += _PT_COST_ALLOC
        self.stats.allocations += 1
        self.stats.note_live(size)
        bin_ = self._bins[domain].get(cls)
        if bin_:
            return bin_.pop()
        return self._bump(domain, thread % self.PARALLEL_ARENAS, cls)

    def free(self, addr: int, size: int, domain: int = 0, thread: int = 0) -> None:
        cls = _pt_size_class(size)
        self._bins[domain].setdefault(cls, []).append(addr)
        self.stats.cycles += _PT_COST_FREE
        self.stats.frees += 1
        self.stats.note_live(-size)

    #: Concurrent threads allocate from distinct arenas; a parallel bulk
    #: allocation therefore interleaves this many contiguous streams, so
    #: logically-consecutive objects land megabytes apart — the layout
    #: cost the pool allocator's per-domain segments avoid (§4.3).
    PARALLEL_ARENAS = 8

    def allocate_many(self, size: int, count: int, domain: int = 0, thread: int = 0):
        import numpy as np

        if count <= 0:
            return np.empty(0, dtype=np.int64)
        ways = min(self.PARALLEL_ARENAS, count)
        cls = _pt_size_class(size)
        out = np.empty(count, dtype=np.int64)
        bin_ = self._bins[domain].setdefault(cls, [])
        for w in range(ways):
            # Stream w serves the storage positions w, w+ways, w+2*ways, ...
            positions = np.arange(w, count, ways, dtype=np.int64)
            take = len(positions)
            from_bin = min(len(bin_), take)
            for k in range(from_bin):
                out[positions[k]] = bin_.pop()
            for k in range(from_bin, take):
                out[positions[k]] = self._bump(domain, w, cls)
        self.stats.cycles += _PT_COST_ALLOC * count
        self.stats.allocations += count
        self.stats.note_live(size * count)
        return out


class JemallocLike(Allocator):
    """jemalloc model: per-thread arenas with slab runs per size class."""

    name = "jemalloc"
    #: Thread caches make the fast path scale well; bin flushes contend.
    parallel_scalability = 0.55

    def __init__(self, address_space: AddressSpace):
        super().__init__()
        self.space = address_space
        # (thread, size class) -> [cursor, end]
        self._runs: dict[tuple[int, int], list[int]] = {}
        # (domain, size class) -> free list (thread caches flush here).
        self._bins: dict[tuple[int, int], list[int]] = {}

    def allocate(self, size: int, domain: int = 0, thread: int = 0) -> int:
        cls = _je_size_class(size)
        self.stats.cycles += _JE_COST_ALLOC
        self.stats.allocations += 1
        self.stats.note_live(size)
        bin_ = self._bins.get((domain, cls))
        if bin_:
            return bin_.pop()
        if cls >= _JE_LARGE_THRESHOLD:
            # Large allocations bypass slabs (jemalloc's "large" class).
            base = self.space.reserve(cls, domain)
            self.stats.note_reserved(cls)
            return base
        key = (thread, cls)
        run = self._runs.get(key)
        if run is None or run[0] + cls > run[1]:
            slab = max(_JE_SLAB_MIN, cls * 8)
            base = self.space.reserve(slab, domain)
            self.stats.note_reserved(slab)
            meta = int(slab * _JE_SLAB_META_FRACTION)
            run = [base + meta, base + slab]
            self._runs[key] = run
        addr = run[0]
        run[0] += cls
        return addr

    def free(self, addr: int, size: int, domain: int = 0, thread: int = 0) -> None:
        cls = _je_size_class(size)
        self._bins.setdefault((domain, cls), []).append(addr)
        self.stats.cycles += _JE_COST_FREE
        self.stats.frees += 1
        self.stats.note_live(-size)

    #: Parallel bulk allocations interleave this many per-thread arenas —
    #: fewer and with smaller (slab-sized) gaps than ptmalloc2, so the
    #: resulting layout sits between ptmalloc2 and the pool allocator.
    PARALLEL_ARENAS = 4

    def allocate_many(self, size: int, count: int, domain: int = 0, thread: int = 0):
        import numpy as np

        if count <= 0:
            return np.empty(0, dtype=np.int64)
        ways = min(self.PARALLEL_ARENAS, count)
        out = np.empty(count, dtype=np.int64)
        for w in range(ways):
            positions = np.arange(w, count, ways, dtype=np.int64)
            for k in range(len(positions)):
                out[positions[k]] = self.allocate(size, domain, thread=thread + w)
        return out
