"""Simulated memory subsystem.

BioDynaMo's custom NUMA-aware pool allocator (paper §4.3) and the native
allocators it is compared against (ptmalloc2, jemalloc; Fig. 13) operate on
real heaps.  Here they operate on a *simulated address space*: allocators
make genuine placement decisions (which address, which NUMA domain, how much
is reserved, what is wasted), agents store the resulting addresses, and the
memory cost model prices accesses by address distance and domain.  Runtime
and memory-consumption differences between allocators therefore emerge from
their actual policies, not from baked-in constants.
"""

from repro.mem.address_space import AddressSpace, DOMAIN_SHIFT
from repro.mem.base import Allocator, AllocatorStats
from repro.mem.pool_allocator import NumaPoolAllocator, PoolAllocatorSet
from repro.mem.malloc_baselines import PtmallocLike, JemallocLike

__all__ = [
    "AddressSpace",
    "DOMAIN_SHIFT",
    "Allocator",
    "AllocatorStats",
    "NumaPoolAllocator",
    "PoolAllocatorSet",
    "PtmallocLike",
    "JemallocLike",
]


def make_allocator(name: str, num_domains: int = 1, **kwargs):
    """Factory used by benchmark configurations.

    ``name`` is one of ``"bdm"`` (the paper's pool allocator),
    ``"ptmalloc2"``, or ``"jemalloc"``.
    """
    space = kwargs.pop("address_space", None) or AddressSpace(num_domains)
    if name == "bdm":
        return PoolAllocatorSet(space, **kwargs)
    if name == "ptmalloc2":
        return PtmallocLike(space, **kwargs)
    if name == "jemalloc":
        return JemallocLike(space, **kwargs)
    raise ValueError(f"unknown allocator {name!r}")
