"""Simulated NUMA-partitioned address space.

Each NUMA domain owns a disjoint 2**40-byte address range; the domain of an
address is recovered with a shift, mirroring how ``libnuma`` placement plus
the OS page tables determine the home node of real memory.  Allocators
reserve large chunks from a domain's range with a bump pointer
(the analogue of ``numa_alloc_onnode``/``mmap``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["AddressSpace", "DOMAIN_SHIFT", "PAGE_SIZE"]

#: log2 of the per-domain address range size.
DOMAIN_SHIFT = 40

#: Simulated OS page size in bytes.
PAGE_SIZE = 4096


class AddressSpace:
    """Bump-pointer reservation of per-domain address ranges."""

    def __init__(self, num_domains: int = 1):
        if num_domains < 1:
            raise ValueError("need at least one domain")
        self.num_domains = num_domains
        # Start each domain's range one page in, so address 0 is never valid.
        self._next = [(d << DOMAIN_SHIFT) + PAGE_SIZE for d in range(num_domains)]
        self.reserved_bytes = 0

    def reserve(self, nbytes: int, domain: int = 0) -> int:
        """Reserve ``nbytes`` in ``domain``; returns the base address.

        Like ``numa_alloc_onnode``, the returned pointer is *not* aligned
        beyond the page size (the paper points this out as a source of waste
        for the N-page-aligned segments of the pool allocator).
        """
        if not 0 <= domain < self.num_domains:
            raise ValueError(f"domain {domain} out of range")
        nbytes = int(nbytes)
        if nbytes <= 0:
            raise ValueError("reservation must be positive")
        base = self._next[domain]
        limit = ((domain + 1) << DOMAIN_SHIFT)
        if base + nbytes > limit:
            raise MemoryError(f"simulated domain {domain} exhausted")
        self._next[domain] = base + nbytes
        self.reserved_bytes += nbytes
        return base

    def domain_of(self, addr) -> np.ndarray:
        """NUMA domain(s) owning the given address(es)."""
        return np.asarray(addr, dtype=np.int64) >> DOMAIN_SHIFT
