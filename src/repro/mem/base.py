"""Allocator interface shared by the pool allocator and the baselines."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Allocator", "AllocatorStats"]


@dataclass
class AllocatorStats:
    """Cumulative allocator accounting.

    ``reserved_bytes`` is memory obtained from the (simulated) OS — the
    quantity the paper's memory-consumption plots report.  ``live_bytes`` is
    the sum of currently-allocated object sizes; the difference is overhead
    (alignment waste, headers, size-class rounding, free-list slack).
    """

    reserved_bytes: int = 0
    peak_reserved_bytes: int = 0
    live_bytes: int = 0
    peak_live_bytes: int = 0
    allocations: int = 0
    frees: int = 0
    #: Bulk moves between a thread-private free list and the central list
    #: (§4.3 — only the pool allocator performs them).
    central_migrations: int = 0
    cycles: float = 0.0

    def note_reserved(self, nbytes: int) -> None:
        """Account ``nbytes`` of new OS reservation (tracks the peak)."""
        self.reserved_bytes += nbytes
        self.peak_reserved_bytes = max(self.peak_reserved_bytes, self.reserved_bytes)

    def note_live(self, delta: int) -> None:
        """Adjust live bytes by ``delta`` (tracks the peak)."""
        self.live_bytes += delta
        self.peak_live_bytes = max(self.peak_live_bytes, self.live_bytes)


class Allocator(ABC):
    """A dynamic memory allocator over the simulated address space.

    Allocation cost in cycles accumulates in ``stats.cycles``; the engine
    drains it into the virtual machine's clock with :meth:`drain_cycles`.

    ``parallel_scalability`` captures how well concurrent allocations
    scale: 1.0 means thread-private fast paths (BioDynaMo's pool with its
    thread-local free lists), small values mean a shared lock serializes
    most operations (glibc's arena locks) — the reason thread-caching
    allocators exist, and a large part of Fig. 13's runtime differences.
    """

    name: str = "allocator"
    parallel_scalability: float = 1.0

    def __init__(self):
        self.stats = AllocatorStats()

    @abstractmethod
    def allocate(self, size: int, domain: int = 0, thread: int = 0) -> int:
        """Allocate ``size`` bytes; returns the simulated address."""

    @abstractmethod
    def free(self, addr: int, size: int, domain: int = 0, thread: int = 0) -> None:
        """Release an allocation previously returned by :meth:`allocate`."""

    def allocate_many(
        self, size: int, count: int, domain: int = 0, thread: int = 0
    ) -> np.ndarray:
        """Allocate ``count`` objects of ``size`` bytes (vector convenience)."""
        out = np.empty(count, dtype=np.int64)
        for i in range(count):
            out[i] = self.allocate(size, domain, thread)
        return out

    def free_many(self, addrs, size: int, domain: int = 0, thread: int = 0) -> None:
        """Release many same-size allocations."""
        for a in np.asarray(addrs, dtype=np.int64):
            self.free(int(a), size, domain, thread)

    def drain_cycles(self) -> float:
        """Return and reset the accumulated allocation cost in cycles."""
        c = self.stats.cycles
        self.stats.cycles = 0.0
        return c

    @property
    def allocations(self) -> int:
        return self.stats.allocations

    @property
    def frees(self) -> int:
        return self.stats.frees

    @property
    def reserved_bytes(self) -> int:
        return self.stats.reserved_bytes

    @property
    def peak_reserved_bytes(self) -> int:
        return self.stats.peak_reserved_bytes

    @property
    def live_bytes(self) -> int:
        return self.stats.live_bytes

    @property
    def peak_live_bytes(self) -> int:
        return self.stats.peak_live_bytes
