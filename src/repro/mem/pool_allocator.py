"""BioDynaMo's NUMA-aware pool memory allocator (paper §4.3, Fig. 4).

One :class:`NumaPoolAllocator` exists per element size, so agents and
behaviors of distinct sizes are segregated and stored in a columnar way.
Each allocator keeps per-NUMA-domain state:

- memory **blocks** reserved from the domain's address range with
  exponentially increasing sizes (``mem_mgr_growth_rate``);
- blocks are divided into **N-page aligned segments**
  (``N = 2**mem_mgr_aligned_pages_shift``); the first 8 bytes of every
  segment hold a pointer back to the owning allocator, so deallocation is
  constant-time from the address alone.  Elements never cross segment
  borders.  Alignment of the (unaligned) OS reservation plus the tail
  element plus the metadata bound the waste by
  ``N*page_size + element_size + 8`` per block, as derived in the paper;
- a **central free list** and **thread-private free lists**; when a private
  list exceeds a threshold, a bulk of nodes migrates to the central list
  (the paper's skip lists make this O(1); we charge a constant cost).

Initialization of fresh memory is on demand ("carving"), in segment-sized
chunks, to bound worst-case allocation latency.
"""

from __future__ import annotations

import numpy as np

from repro.mem.address_space import AddressSpace, PAGE_SIZE
from repro.mem.base import Allocator

__all__ = ["NumaPoolAllocator", "PoolAllocatorSet"]

# Operation costs in cycles (constant-time paths of the paper's design).
_COST_PRIVATE_OP = 22.0      # pop/push on a thread-private list
_COST_CARVE = 28.0           # initialize one fresh element
_COST_CENTRAL_MIGRATION = 240.0  # bulk move between central and private lists
_COST_BLOCK_RESERVE = 9_000.0    # numa_alloc_onnode for a new block

#: Number of nodes moved per central<->private migration.
_MIGRATION_BATCH = 64

#: A private list longer than this many nodes triggers migration to central.
_PRIVATE_LIST_LIMIT = 256


class _DomainPool:
    """Per-NUMA-domain state of a :class:`NumaPoolAllocator`."""

    def __init__(self, element_size: int, aligned_pages_shift: int, initial_block_bytes: int):
        self.element_size = element_size
        self.segment_bytes = (1 << aligned_pages_shift) * PAGE_SIZE
        self.metadata_bytes = 8
        per_seg = (self.segment_bytes - self.metadata_bytes) // element_size
        if per_seg < 1:
            raise ValueError(
                f"element size {element_size} exceeds segment capacity "
                f"{self.segment_bytes - self.metadata_bytes}"
            )
        self.elements_per_segment = per_seg
        self.next_block_bytes = max(initial_block_bytes, self.segment_bytes * 2)
        self.central: list[int] = []
        self.private: dict[int, list[int]] = {}
        # Carving cursor within the current segment, and remaining aligned
        # segment range of the current block.
        self._carve_addr = 0
        self._carve_seg_end = 0
        self._block_end = 0

    def aligned_remaining(self) -> int:
        return self._block_end - self._carve_seg_end


class NumaPoolAllocator(Allocator):
    """Pool allocator for a single element size across NUMA domains."""

    name = "bdm"

    def __init__(
        self,
        address_space: AddressSpace,
        element_size: int,
        growth_rate: float = 2.0,
        aligned_pages_shift: int = 5,
        initial_block_bytes: int = 1 << 18,
    ):
        super().__init__()
        if growth_rate < 1.0:
            raise ValueError("mem_mgr_growth_rate must be >= 1.0")
        self.space = address_space
        self.element_size = int(element_size)
        self.growth_rate = growth_rate
        self.aligned_pages_shift = aligned_pages_shift
        self._domains = [
            _DomainPool(self.element_size, aligned_pages_shift, initial_block_bytes)
            for _ in range(address_space.num_domains)
        ]

    @property
    def max_allocation(self) -> int:
        """Allocation size limit imposed by the segment design."""
        seg = (1 << self.aligned_pages_shift) * PAGE_SIZE
        return seg - 8

    @property
    def central_free_nodes(self) -> int:
        """Nodes currently on the central free lists (all domains)."""
        return sum(len(p.central) for p in self._domains)

    @property
    def central_migrations(self) -> int:
        """Bulk moves between private and central free lists so far."""
        return self.stats.central_migrations

    # ------------------------------------------------------------------ #

    def _reserve_block(self, pool: _DomainPool, domain: int) -> None:
        raw = self.space.reserve(pool.next_block_bytes, domain)
        self.stats.note_reserved(pool.next_block_bytes)
        self.stats.cycles += _COST_BLOCK_RESERVE
        seg = pool.segment_bytes
        # numa_alloc_onnode is not N-page aligned: usable aligned range
        # starts at the first segment boundary inside the reservation.
        aligned_start = -(-raw // seg) * seg
        aligned_end = ((raw + pool.next_block_bytes) // seg) * seg
        pool._carve_seg_end = aligned_start  # nothing carved yet
        pool._carve_addr = aligned_start
        pool._block_end = aligned_end
        pool.next_block_bytes = int(pool.next_block_bytes * self.growth_rate)

    def _carve_one(self, pool: _DomainPool, domain: int) -> int:
        """Take one fresh element from the current segment, on demand."""
        if pool._carve_addr + self.element_size > pool._carve_seg_end:
            # Advance to the next aligned segment (or reserve a new block).
            if pool._carve_seg_end + pool.segment_bytes > pool._block_end:
                self._reserve_block(pool, domain)
            next_seg = pool._carve_seg_end
            pool._carve_seg_end = next_seg + pool.segment_bytes
            pool._carve_addr = next_seg + pool.metadata_bytes
        addr = pool._carve_addr
        pool._carve_addr += self.element_size
        self.stats.cycles += _COST_CARVE
        return addr

    def allocate(self, size: int, domain: int = 0, thread: int = 0) -> int:
        if size > self.max_allocation:
            raise ValueError("allocation exceeds N*page_size - metadata_size")
        pool = self._domains[domain]
        priv = pool.private.setdefault(thread, [])
        self.stats.cycles += _COST_PRIVATE_OP
        if not priv:
            if pool.central:
                # Refill a batch from the central list (skip-list bulk move).
                batch = pool.central[-_MIGRATION_BATCH:]
                del pool.central[-_MIGRATION_BATCH:]
                priv.extend(batch)
                self.stats.cycles += _COST_CENTRAL_MIGRATION
                self.stats.central_migrations += 1
            else:
                self.stats.allocations += 1
                self.stats.note_live(self.element_size)
                return self._carve_one(pool, domain)
        self.stats.allocations += 1
        self.stats.note_live(self.element_size)
        return priv.pop()

    def free(self, addr: int, size: int = 0, domain: int = 0, thread: int = 0) -> None:
        pool = self._domains[domain]
        priv = pool.private.setdefault(thread, [])
        priv.append(addr)
        self.stats.cycles += _COST_PRIVATE_OP
        self.stats.frees += 1
        self.stats.note_live(-self.element_size)
        if len(priv) > _PRIVATE_LIST_LIMIT:
            # Migrate a bulk back to the central list to avoid memory leaks
            # across threads (paper: skip lists make this constant-time).
            batch = priv[-_MIGRATION_BATCH:]
            del priv[-_MIGRATION_BATCH:]
            pool.central.extend(batch)
            self.stats.cycles += _COST_CENTRAL_MIGRATION
            self.stats.central_migrations += 1

    # ------------------------------------------------------------------ #

    def allocate_many(self, size: int, count: int, domain: int = 0, thread: int = 0) -> np.ndarray:
        """Vectorized allocation; carves contiguous runs where possible."""
        pool = self._domains[domain]
        out = np.empty(count, dtype=np.int64)
        filled = 0
        priv = pool.private.setdefault(thread, [])
        # Reuse freed elements first (LIFO), then central, then carve runs.
        take = min(len(priv), count)
        if take:
            out[:take] = priv[-take:]
            del priv[-take:]
            self.stats.cycles += _COST_PRIVATE_OP * take
            filled = take
        if filled < count and pool.central:
            take = min(len(pool.central), count - filled)
            out[filled : filled + take] = pool.central[-take:]
            del pool.central[-take:]
            self.stats.cycles += _COST_CENTRAL_MIGRATION * (1 + take // _MIGRATION_BATCH)
            self.stats.central_migrations += 1 + take // _MIGRATION_BATCH
            filled += take
        while filled < count:
            # Carve the rest of the current segment in one vector op.
            if pool._carve_addr + self.element_size > pool._carve_seg_end:
                self._carve_one(pool, domain)  # advances segment; returns one elem
                out[filled] = pool._carve_addr - self.element_size
                filled += 1
                continue
            room = (pool._carve_seg_end - pool._carve_addr) // self.element_size
            take = min(room, count - filled)
            out[filled : filled + take] = (
                pool._carve_addr + np.arange(take, dtype=np.int64) * self.element_size
            )
            pool._carve_addr += take * self.element_size
            self.stats.cycles += _COST_CARVE * take
            filled += take
        self.stats.allocations += count
        self.stats.note_live(count * self.element_size)
        return out

    def free_many(self, addrs, size: int = 0, domain: int = 0, thread: int = 0) -> None:
        """Bulk free straight to the central list (skip-list bulk move)."""
        addrs = np.asarray(addrs, dtype=np.int64)
        pool = self._domains[domain]
        pool.central.extend(int(a) for a in addrs)
        self.stats.cycles += _COST_CENTRAL_MIGRATION * (1 + len(addrs) // _MIGRATION_BATCH)
        self.stats.central_migrations += 1 + len(addrs) // _MIGRATION_BATCH
        self.stats.frees += len(addrs)
        self.stats.note_live(-len(addrs) * self.element_size)


class PoolAllocatorSet(Allocator):
    """Routes allocations to one :class:`NumaPoolAllocator` per size.

    This mirrors BioDynaMo creating "multiple instances of these allocators
    because they can only return memory elements of one size".
    """

    name = "bdm"

    def __init__(self, address_space: AddressSpace, growth_rate: float = 2.0,
                 aligned_pages_shift: int = 5):
        super().__init__()
        self.space = address_space
        self.growth_rate = growth_rate
        self.aligned_pages_shift = aligned_pages_shift
        self._pools: dict[int, NumaPoolAllocator] = {}

    def _pool(self, size: int) -> NumaPoolAllocator:
        size = int(size)
        if size not in self._pools:
            self._pools[size] = NumaPoolAllocator(
                self.space,
                size,
                growth_rate=self.growth_rate,
                aligned_pages_shift=self.aligned_pages_shift,
            )
        return self._pools[size]

    def allocate(self, size: int, domain: int = 0, thread: int = 0) -> int:
        return self._pool(size).allocate(size, domain, thread)

    def free(self, addr: int, size: int, domain: int = 0, thread: int = 0) -> None:
        self._pool(size).free(addr, size, domain, thread)

    def allocate_many(self, size: int, count: int, domain: int = 0, thread: int = 0):
        return self._pool(size).allocate_many(size, count, domain, thread)

    def free_many(self, addrs, size: int, domain: int = 0, thread: int = 0) -> None:
        """Bulk free via the pool of this size class."""
        self._pool(size).free_many(addrs, size, domain, thread)

    def drain_cycles(self) -> float:
        c = self.stats.cycles + sum(p.stats.cycles for p in self._pools.values())
        self.stats.cycles = 0.0
        for p in self._pools.values():
            p.stats.cycles = 0.0
        return c

    @property
    def allocations(self) -> int:
        return sum(p.stats.allocations for p in self._pools.values())

    @property
    def frees(self) -> int:
        return sum(p.stats.frees for p in self._pools.values())

    @property
    def central_free_nodes(self) -> int:
        """Nodes on the central free lists, across all size classes."""
        return sum(p.central_free_nodes for p in self._pools.values())

    @property
    def central_migrations(self) -> int:
        """Private<->central bulk moves, across all size classes."""
        return sum(p.stats.central_migrations for p in self._pools.values())

    @property
    def reserved_bytes(self) -> int:
        return sum(p.stats.reserved_bytes for p in self._pools.values())

    @property
    def peak_reserved_bytes(self) -> int:
        return sum(p.stats.peak_reserved_bytes for p in self._pools.values())

    @property
    def live_bytes(self) -> int:
        return sum(p.stats.live_bytes for p in self._pools.values())

    @property
    def peak_live_bytes(self) -> int:
        return sum(p.stats.peak_live_bytes for p in self._pools.values())
