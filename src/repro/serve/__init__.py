"""Simulation-as-a-service: the multi-tenant session layer.

``repro.serve`` turns the single-simulation engine into a service: many
small-to-medium simulations ("sessions") hosted concurrently on a warm
pool of forked workers, exposed through one typed request/reply
protocol over two transports (in-process and ndjson sockets).  See
``docs/serve.md`` for the protocol spec, lifecycle diagram, and
eviction semantics.

- :mod:`repro.serve.protocol` — the frozen-dataclass wire schema.
- :mod:`repro.serve.session` — worker-side simulation hosting.
- :mod:`repro.serve.pool` — host-side pool: affinity, LRU eviction,
  transparent checkpoint/resume, ``serve:*`` metrics.
- :mod:`repro.serve.server` — asyncio socket transport,
  :func:`serve_forever`.
- :mod:`repro.serve.client` — :class:`SessionClient` facade.
"""

from repro.serve.client import ServeError, SessionClient, SessionHandle
from repro.serve.pool import SessionPool, StateView
from repro.serve.protocol import PROTO_VERSION, ProtocolError
from repro.serve.server import ServerThread, SessionServer, serve_forever

__all__ = [
    "PROTO_VERSION",
    "ProtocolError",
    "ServeError",
    "ServerThread",
    "SessionClient",
    "SessionHandle",
    "SessionPool",
    "SessionServer",
    "StateView",
    "serve_forever",
]
