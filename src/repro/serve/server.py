"""Asyncio ndjson socket transport over a :class:`SessionPool`.

The server owns no session logic: each decoded frame goes to
``pool.handle`` on a worker thread (``asyncio.to_thread``), so slow
simulation steps of one tenant never block another tenant's frames —
concurrency across sessions comes from the pool's per-worker locks, the
event loop only shuttles bytes.

Error policy (fuzz-tested): a malformed frame — bad JSON, unknown type,
wrong fields, a *reply* type sent as a request — yields one
``session_error`` frame with code ``"protocol"`` on the same
connection, which stays open.  Only EOF or transport errors end a
connection; nothing a client sends can bring the server down.
"""

from __future__ import annotations

import asyncio
import threading

from repro.serve import protocol as P
from repro.serve.pool import SessionPool

__all__ = ["SessionServer", "ServerThread", "serve_forever"]

#: Longest accepted frame; protects the server from unbounded lines.
MAX_FRAME_BYTES = 4 * 1024 * 1024


class SessionServer:
    """Bind/serve lifecycle around one pool (owned by the caller)."""

    def __init__(self, pool: SessionPool, host: str = "127.0.0.1",
                 port: int = 0):
        self.pool = pool
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._stop = asyncio.Event()
        self._conn_tasks: set = set()

    async def start(self) -> None:
        """Bind and start accepting; resolves the ephemeral port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_FRAME_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Run until a ``shutdown`` frame arrives (or :meth:`stop`)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._stop.wait()
        # Connections blocked on readline would outlive the loop and be
        # destroyed mid-coroutine; cancel them while the loop still runs.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    def stop(self) -> None:
        """Signal :meth:`serve_until_shutdown` to wind down."""
        self._stop.set()

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(P.encode(P.SessionError(
                        "protocol", "frame too long")))
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                reply, is_shutdown = await self._dispatch(line)
                writer.write(P.encode(reply))
                await writer.drain()
                if is_shutdown:
                    self.stop()
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _dispatch(self, line: bytes):
        try:
            request = P.decode(line)
        except P.ProtocolError as exc:
            return P.SessionError("protocol", str(exc)), False
        if type(request) not in P.REQUEST_TYPES.values():
            return (
                P.SessionError(
                    "protocol",
                    f"{type(request).__name__} is a reply type, not a "
                    "request",
                ),
                False,
            )
        reply = await asyncio.to_thread(self.pool.handle, request)
        return reply, isinstance(request, P.ShutdownRequest)


class ServerThread:
    """A SessionServer running on a background event-loop thread.

    Gives synchronous code (tests, the bench harness) a real socket
    endpoint: ``with ServerThread(pool) as srv: connect(srv.port)``.
    """

    def __init__(self, pool: SessionPool, host: str = "127.0.0.1",
                 port: int = 0):
        self.server = SessionServer(pool, host, port)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    def start(self) -> "ServerThread":
        """Spawn the event-loop thread and wait until the port is bound."""
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("session server failed to start")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def main():
            await self.server.start()
            self._ready.set()
            await self.server.serve_until_shutdown()

        try:
            self._loop.run_until_complete(main())
        finally:
            self._loop.close()

    def stop(self) -> None:
        """Stop the server and join the loop thread (pool untouched)."""
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self.server.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_forever(
    host: str = "127.0.0.1",
    port: int = 7464,
    workers: int = 2,
    max_resident: int = 8,
    spool_dir=None,
) -> None:
    """Blocking entry point of ``python -m repro serve``.

    Runs until a client sends ``shutdown`` or the process receives
    SIGINT; the pool (workers, shm segments, spool) is torn down on the
    way out either way.
    """
    pool = SessionPool(
        workers=workers, max_resident=max_resident, spool_dir=spool_dir
    )
    server = SessionServer(pool, host, port)

    async def main():
        await server.start()
        print(f"repro serve: listening on {server.host}:{server.port} "
              f"({workers} workers, max_resident={max_resident})",
              flush=True)
        await server.serve_until_shutdown()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    finally:
        pool.shutdown()
