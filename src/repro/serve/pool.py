"""Host-side session pool: warm workers, LRU eviction, one dispatcher.

:class:`SessionPool` is the single request dispatcher both transports
share — the in-process :class:`~repro.serve.client.SessionClient` calls
:meth:`SessionPool.handle` directly, and the asyncio socket server calls
the *same* method from a thread.  Every request in, one protocol reply
out, never an exception (errors become :class:`SessionError` frames).

Execution model
---------------
A warm pool of persistent forked daemon workers
(:func:`repro.serve.session.serve_worker_main`) hosts the simulations;
each session has **worker affinity** — its Simulation object lives in
exactly one worker — so a session's commands are serialized by that
worker's command lock while different tenants proceed in parallel on
different workers.

Eviction
--------
At most ``max_resident`` sessions keep live simulation state.  Creating
or resuming past the cap checkpoints the least-recently-used idle
resident session to the spool directory (checkpoint format v2, with the
session's rebuild spec as ``extra_meta``) and frees its worker memory.
Touching an evicted session transparently resumes it — rebuild from
spec, restore checkpoint — and the PR 7 ``__rng__`` persistence makes
the continuation bitwise-identical to never having been evicted.
Sessions running a background advance are never eviction victims; if
every resident session is busy the cap is soft (the new session is
admitted anyway).
"""

from __future__ import annotations

import queue
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import multiprocessing as mp

import numpy as np

from repro.obs.core import Observability
from repro.serve import protocol as P
from repro.serve.session import serve_worker_main

__all__ = ["SessionPool", "StateView"]

#: Seconds to wait for one worker command before declaring it dead.
_CALL_TIMEOUT_S = 300.0

_SID_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-"
)


class _WorkerError(RuntimeError):
    """A worker replied ``("err", ...)``; carries the protocol code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


@dataclass
class _Worker:
    proc: object
    inbox: object
    replies: object
    #: Serializes commands on this worker (one outstanding at a time).
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: Session ids currently resident here.
    sessions: set = field(default_factory=set)


@dataclass
class _Session:
    sid: str
    spec: dict
    worker: int | None = None
    resident: bool = False
    deleted: bool = False
    advancing: bool = False
    ever_resumed: bool = False
    last_used: float = 0.0
    ckpt_path: str = ""
    #: Last known ``{iteration, time, n_agents}`` (kept fresh on every
    #: worker reply so detached sessions can answer snapshots cheaply).
    status: dict = field(default_factory=dict)
    lock: threading.RLock = field(default_factory=threading.RLock)


class StateView:
    """Zero-copy, read-oriented view of a resident session's agent state.

    Attaches the session's consolidated shm block by name and exposes
    each column as a NumPy view truncated to the live row count.  Only
    meaningful in-process (the attaching process must share the kernel's
    shm namespace).  Call :meth:`close` when done; safe only while the
    session is idle (the pool serializes commands, not host-side peeks).
    """

    def __init__(self, segment: str, layout: dict, n: int):
        from repro.parallel.shm import attach_block

        self._shm = attach_block(segment)
        self.n = int(n)
        self.columns: dict[str, np.ndarray] = {}
        rows = int(layout["capacity"])
        for name, dt, shape in layout["columns"]:
            full = np.ndarray(
                (rows, *[int(s) for s in shape]),
                dtype=np.dtype(dt),
                buffer=self._shm.buf,
                offset=int(layout["offsets"][name]),
            )
            self.columns[name] = full[: self.n]

    def __getitem__(self, name: str) -> np.ndarray:
        return self.columns[name]

    def close(self) -> None:
        """Drop the column views and detach the shm segment."""
        self.columns = {}
        try:
            self._shm.close()
        except BufferError:
            # A caller still holds a view; the segment is owned (and
            # eventually unlinked) by the worker, so nothing leaks.
            pass


class SessionPool:
    """Multi-tenant session host; see the module docstring."""

    def __init__(
        self,
        workers: int = 2,
        max_resident: int = 8,
        spool_dir=None,
        obs: Observability | None = None,
    ):
        if workers < 1:
            raise ValueError("need at least one worker")
        if max_resident < 1:
            raise ValueError("max_resident must be >= 1")
        self.max_resident = int(max_resident)
        self.obs = obs if obs is not None else Observability()
        reg = self.obs.registry
        self._active = reg.gauge("serve:sessions_active")
        self._created = reg.counter("serve:sessions_created")
        self._steps = reg.counter("serve:steps_total")
        #: Ticks consumed by background advance beyond one per RPC — the
        #: idle-session steps that event-scheduling horizon jumps made
        #: O(1) (see HostedSession.step_chunk).
        self._jumped_steps = reg.counter("serve:advance_jumped_steps")
        self._advance_chunks = reg.counter("serve:advance_chunks")
        self._evictions = reg.counter("serve:evictions")
        self._resumes = reg.counter("serve:resume_count")
        self._owns_spool = spool_dir is None
        self.spool_dir = Path(
            tempfile.mkdtemp(prefix="repro-serve-")
            if spool_dir is None else spool_dir
        )
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        self._sessions: dict[str, _Session] = {}
        self._table_lock = threading.Lock()
        self._seq = 0
        self._closed = False
        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(method)
        self._workers: list[_Worker] = []
        for w in range(int(workers)):
            inbox = ctx.SimpleQueue()
            replies = ctx.Queue()
            proc = ctx.Process(
                target=serve_worker_main,
                args=(w, inbox, replies),
                daemon=True,
                name=f"repro-serve-worker-{w}",
            )
            proc.start()
            self._workers.append(_Worker(proc, inbox, replies))

    # -- worker RPC ----------------------------------------------------- #

    def _call(self, worker_id: int, msg: tuple) -> dict:
        w = self._workers[worker_id]
        with w.lock:
            w.inbox.put(msg)
            try:
                status, _sid, *rest = w.replies.get(timeout=_CALL_TIMEOUT_S)
            except queue.Empty:
                raise _WorkerError(
                    "internal", f"worker {worker_id} did not reply"
                ) from None
        if status == "ok":
            return rest[0]
        code, message = rest
        raise _WorkerError(code, message)

    # -- session table -------------------------------------------------- #

    def _new_sid(self, name: str) -> str:
        with self._table_lock:
            if name:
                if not set(name) <= _SID_OK:
                    raise _WorkerError(
                        "invalid_request",
                        "session names may only contain [A-Za-z0-9_.-]",
                    )
                if name in self._sessions:
                    raise _WorkerError(
                        "invalid_request", f"session name {name!r} in use"
                    )
                return name
            self._seq += 1
            return f"s-{self._seq:06d}"

    def _get(self, sid: str) -> _Session:
        rec = self._sessions.get(sid)
        if rec is None or rec.deleted:
            raise _WorkerError("unknown_session", f"no session {sid!r}")
        return rec

    def _least_loaded_worker(self) -> int:
        return min(
            range(len(self._workers)),
            key=lambda w: len(self._workers[w].sessions),
        )

    def _resident_count(self) -> int:
        return sum(
            1 for s in self._sessions.values()
            if s.resident and not s.deleted
        )

    def _evict_for_room(self, incoming: str) -> None:
        """Checkpoint LRU idle residents until the cap has room for one
        more.  Busy (advancing or locked-by-another-request) sessions
        are skipped; the cap is soft when everyone is busy."""
        while self._resident_count() >= self.max_resident:
            with self._table_lock:
                candidates = sorted(
                    (
                        s for s in self._sessions.values()
                        if s.resident and not s.deleted
                        and not s.advancing and s.sid != incoming
                    ),
                    key=lambda s: s.last_used,
                )
            evicted_one = False
            for victim in candidates:
                if not victim.lock.acquire(blocking=False):
                    continue
                try:
                    if not victim.resident or victim.deleted:
                        continue
                    self._evict(victim)
                    evicted_one = True
                    break
                finally:
                    victim.lock.release()
            if not evicted_one:
                return

    def _evict(self, rec: _Session) -> None:
        """Checkpoint ``rec`` to the spool and free its worker memory.
        Caller holds ``rec.lock``."""
        path = str(self.spool_dir / f"{rec.sid}.npz")
        payload = self._call(
            rec.worker, ("checkpoint", rec.sid, path, rec.spec)
        )
        rec.status = {k: payload[k] for k in ("iteration", "time", "n_agents")}
        self._call(rec.worker, ("delete", rec.sid))
        self._workers[rec.worker].sessions.discard(rec.sid)
        rec.ckpt_path = path
        rec.resident = False
        rec.worker = None
        self._evictions.inc()
        self.obs.instant("serve:evict", session=rec.sid)

    def _ensure_resident(self, rec: _Session) -> bool:
        """Resume ``rec`` if evicted/detached; returns True on resume.
        Caller holds ``rec.lock``."""
        if rec.resident:
            return False
        if not rec.ckpt_path:
            raise _WorkerError(
                "internal", f"session {rec.sid!r} has no state to resume"
            )
        self._evict_for_room(rec.sid)
        worker = self._least_loaded_worker()
        payload = self._call(
            worker, ("restore", rec.sid, rec.spec, rec.ckpt_path)
        )
        rec.status = payload
        rec.worker = worker
        rec.resident = True
        rec.ever_resumed = True
        self._workers[worker].sessions.add(rec.sid)
        self._resumes.inc()
        self.obs.instant("serve:resume", session=rec.sid)
        return True

    def _touch(self, rec: _Session) -> None:
        rec.last_used = time.monotonic()

    # -- request handling ------------------------------------------------ #

    def handle(self, request):
        """One protocol request → one protocol reply (never raises)."""
        if self._closed:
            return P.SessionError("internal", "pool is shut down")
        sid = getattr(request, "session", "")
        handler = self._HANDLERS.get(type(request))
        if handler is None:
            return P.SessionError(
                "invalid_request",
                f"unhandled request {type(request).__name__}",
                session=sid,
            )
        with self.obs.scope(session=sid):
            with self.obs.span("serve:" + type(request).__name__):
                try:
                    return handler(self, request)
                except _WorkerError as exc:
                    return P.SessionError(exc.code, str(exc), session=sid)
                except Exception as exc:  # noqa: BLE001 - reply, don't die
                    return P.SessionError(
                        "internal",
                        f"{type(exc).__name__}: {exc}",
                        session=sid,
                    )

    def _handle_create(self, req: P.CreateSession):
        if req.agents < 1:
            return P.SessionError(
                "invalid_request", "agents must be >= 1", session=req.name
            )
        sid = self._new_sid(req.name)
        spec = {
            "model": req.model,
            "agents": int(req.agents),
            "seed": int(req.seed),
            "params": dict(req.params),
        }
        rec = _Session(sid=sid, spec=spec)
        with rec.lock:
            with self._table_lock:
                self._sessions[sid] = rec
            try:
                self._evict_for_room(sid)
                worker = self._least_loaded_worker()
                payload = self._call(worker, ("create", sid, spec))
            except _WorkerError:
                with self._table_lock:
                    self._sessions.pop(sid, None)
                raise
            rec.status = payload
            rec.worker = worker
            rec.resident = True
            self._workers[worker].sessions.add(sid)
            self._touch(rec)
        self._created.inc()
        self._active.set(self._live_count())
        return P.SessionCreated(
            session=sid,
            model=req.model,
            agents=int(req.agents),
            seed=int(req.seed),
            iteration=int(payload["iteration"]),
            n_agents=int(payload["n_agents"]),
        )

    def _step_common(self, sid: str, op: tuple, want_checksum: bool):
        rec = self._get(sid)
        with rec.lock:
            if rec.advancing:
                return P.SessionError(
                    "busy", f"session {sid!r} is advancing in the "
                    "background", session=sid,
                )
            resumed = self._ensure_resident(rec)
            payload = self._call(rec.worker, op)
            rec.status = {
                k: payload[k] for k in ("iteration", "time", "n_agents")
            }
            self._touch(rec)
        self._steps.inc(int(payload["steps_done"]))
        return P.StepReply(
            session=sid,
            steps_done=int(payload["steps_done"]),
            iteration=int(payload["iteration"]),
            time=float(payload["time"]),
            n_agents=int(payload["n_agents"]),
            checksum=payload["checksum"],
            resumed=resumed,
        )

    def _handle_step(self, req: P.StepRequest):
        if req.steps < 0:
            return P.SessionError(
                "invalid_request", "steps must be >= 0", session=req.session
            )
        return self._step_common(
            req.session,
            ("step", req.session, int(req.steps), bool(req.checksum)),
            req.checksum,
        )

    def _handle_run_to(self, req: P.RunToRequest):
        return self._step_common(
            req.session,
            ("run_to", req.session, int(req.tick), bool(req.checksum)),
            req.checksum,
        )

    def _handle_advance(self, req: P.AdvanceRequest):
        if req.steps < 1:
            return P.SessionError(
                "invalid_request", "steps must be >= 1", session=req.session
            )
        rec = self._get(req.session)
        with rec.lock:
            if rec.advancing:
                return P.SessionError(
                    "busy", f"session {req.session!r} is already advancing",
                    session=req.session,
                )
            self._ensure_resident(rec)
            rec.advancing = True
            self._touch(rec)
        thread = threading.Thread(
            target=self._advance_loop,
            args=(rec, int(req.steps)),
            name=f"repro-serve-advance-{rec.sid}",
            daemon=True,
        )
        thread.start()
        return P.Ack(session=req.session,
                     detail=f"advancing {int(req.steps)} steps")

    def _advance_loop(self, rec: _Session, steps: int) -> None:
        # One scheduling quantum per lock acquisition: snapshots (and the
        # delete/detach paths, which clear ``advancing``) interleave
        # freely.  A quantum is a single tick — or one event-scheduling
        # horizon jump covering many ticks when the session is quiescent,
        # so idle tenants cost one RPC per jump instead of per tick.
        remaining = int(steps)
        try:
            while remaining > 0:
                with rec.lock:
                    if rec.deleted or not rec.advancing or not rec.resident:
                        break
                    payload = self._call(
                        rec.worker, ("step_chunk", rec.sid, remaining)
                    )
                    rec.status = {
                        k: payload[k]
                        for k in ("iteration", "time", "n_agents")
                    }
                    self._touch(rec)
                done = max(1, int(payload["steps_done"]))
                remaining -= done
                self._steps.inc(done)
                self._advance_chunks.inc()
                if done > 1:
                    self._jumped_steps.inc(done - 1)
        except _WorkerError:
            pass
        finally:
            rec.advancing = False

    def _handle_snapshot(self, req: P.SnapshotRequest):
        rec = self._get(req.session)
        with rec.lock:
            if rec.resident and not rec.advancing:
                payload = self._call(
                    rec.worker,
                    ("snapshot", rec.sid, bool(req.include_timeseries)),
                )
                rec.status = {
                    k: payload[k] for k in ("iteration", "time", "n_agents")
                }
                metrics = dict(payload["metrics"])
                series = payload["timeseries"]
            else:
                # Detached or mid-advance: answer from the cached status
                # without touching (or resuming) the simulation.
                metrics = {}
                series = {}
            metrics.update(
                {k: v for k, v in self.obs.registry.snapshot().items()
                 if k.startswith("serve:")}
            )
            return P.StateSnapshot(
                session=rec.sid,
                iteration=int(rec.status.get("iteration", 0)),
                time=float(rec.status.get("time", 0.0)),
                n_agents=int(rec.status.get("n_agents", 0)),
                resident=rec.resident,
                advancing=rec.advancing,
                metrics=metrics,
                timeseries=series,
            )

    def _checkpoint_common(self, sid: str, detach: bool):
        rec = self._get(sid)
        with rec.lock:
            if rec.advancing:
                return P.SessionError(
                    "busy", f"session {sid!r} is advancing; cannot "
                    "checkpoint mid-advance", session=sid,
                )
            self._ensure_resident(rec)
            path = str(self.spool_dir / f"{rec.sid}.npz")
            payload = self._call(
                rec.worker, ("checkpoint", rec.sid, path, rec.spec)
            )
            rec.status = {
                k: payload[k] for k in ("iteration", "time", "n_agents")
            }
            rec.ckpt_path = path
            if detach:
                self._call(rec.worker, ("delete", rec.sid))
                self._workers[rec.worker].sessions.discard(rec.sid)
                rec.resident = False
                rec.worker = None
            self._touch(rec)
        return P.CheckpointReply(
            session=sid, path=path, iteration=int(payload["iteration"])
        )

    def _handle_checkpoint(self, req: P.CheckpointRequest):
        return self._checkpoint_common(req.session, detach=False)

    def _handle_detach(self, req: P.DetachRequest):
        return self._checkpoint_common(req.session, detach=True)

    def _handle_resume(self, req: P.ResumeRequest):
        rec = self._get(req.session)
        with rec.lock:
            resumed = self._ensure_resident(rec)
            self._touch(rec)
            status = dict(rec.status)
        return P.StepReply(
            session=rec.sid,
            steps_done=0,
            iteration=int(status["iteration"]),
            time=float(status["time"]),
            n_agents=int(status["n_agents"]),
            resumed=resumed,
        )

    def _handle_delete(self, req: P.DeleteRequest):
        rec = self._get(req.session)
        with rec.lock:
            rec.advancing = False
            rec.deleted = True
            if rec.resident:
                self._call(rec.worker, ("delete", rec.sid))
                self._workers[rec.worker].sessions.discard(rec.sid)
                rec.resident = False
            if rec.ckpt_path:
                Path(rec.ckpt_path).unlink(missing_ok=True)
        with self._table_lock:
            self._sessions.pop(rec.sid, None)
        self._active.set(self._live_count())
        return P.Ack(session=rec.sid, detail="deleted")

    def _handle_list_sessions(self, req: P.ListSessionsRequest):
        with self._table_lock:
            rows = [
                {
                    "id": s.sid,
                    "model": s.spec["model"],
                    "agents": s.spec["agents"],
                    "iteration": int(s.status.get("iteration", 0)),
                    "resident": s.resident,
                    "advancing": s.advancing,
                }
                for s in self._sessions.values()
                if not s.deleted
            ]
        return P.SessionList(sessions=rows)

    def _handle_list_models(self, req: P.ListModelsRequest):
        from repro.simulations.registry import available_simulations

        return P.ModelList(models=available_simulations())

    def _handle_shutdown(self, req: P.ShutdownRequest):
        # The transport owning this pool performs the actual shutdown
        # after delivering the acknowledgment.
        return P.Ack(detail="shutting down")

    _HANDLERS = {
        P.CreateSession: _handle_create,
        P.StepRequest: _handle_step,
        P.RunToRequest: _handle_run_to,
        P.AdvanceRequest: _handle_advance,
        P.SnapshotRequest: _handle_snapshot,
        P.CheckpointRequest: _handle_checkpoint,
        P.DetachRequest: _handle_detach,
        P.ResumeRequest: _handle_resume,
        P.DeleteRequest: _handle_delete,
        P.ListSessionsRequest: _handle_list_sessions,
        P.ListModelsRequest: _handle_list_models,
        P.ShutdownRequest: _handle_shutdown,
    }

    def _live_count(self) -> int:
        return sum(1 for s in self._sessions.values() if not s.deleted)

    # -- host-side zero-copy peek ---------------------------------------- #

    def attach_state(self, sid: str) -> StateView:
        """Attach a resident session's consolidated shm block and return
        zero-copy column views (in-process pools only)."""
        rec = self._get(sid)
        with rec.lock:
            self._ensure_resident(rec)
            payload = self._call(rec.worker, ("layout", rec.sid))
        if not payload["segment"]:
            raise RuntimeError(f"session {sid!r} has no shm block")
        return StateView(payload["segment"], payload["layout"], payload["n"])

    # -- lifecycle ------------------------------------------------------- #

    def shutdown(self) -> None:
        """Stop advances, workers, and (if owned) remove the spool."""
        if self._closed:
            return
        self._closed = True
        with self._table_lock:
            for rec in self._sessions.values():
                rec.advancing = False
        for w in self._workers:
            try:
                w.inbox.put(("stop",))
            except (OSError, ValueError):
                pass
        for w in self._workers:
            w.proc.join(timeout=10)
            if w.proc.is_alive():
                w.proc.terminate()
                w.proc.join(timeout=2)
            try:
                w.replies.close()
            except (OSError, ValueError):
                pass
        self._workers = []
        if self._owns_spool:
            shutil.rmtree(self.spool_dir, ignore_errors=True)

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
