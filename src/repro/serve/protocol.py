"""Typed wire schema for the session server.

Every message crossing the session boundary — in-process
:class:`~repro.serve.client.SessionClient` calls and socket frames alike
— is one of the frozen dataclasses below.  No ad-hoc dicts: the
in-process client, the socket client, and the server all speak
:func:`to_wire`/:func:`from_wire`, so the two transports cannot drift.

Wire format: one JSON object per newline-terminated UTF-8 line
(ndjson).  Each object carries two envelope fields injected by
:func:`to_wire`:

- ``"type"`` — the message's registered tag (``"create_session"``, ...),
- ``"proto_version"`` — currently :data:`PROTO_VERSION`; a mismatch is
  rejected before any field is looked at, so incompatible clients fail
  loudly instead of mis-parsing.

Anything malformed — bad JSON, a non-object, an unknown type tag, a
missing required field, an unexpected field, a wrong field type —
raises :class:`ProtocolError`; the server converts that to a
:class:`SessionError` reply (code ``"protocol"``) and keeps the
connection alive.  The fuzz smoke test feeds garbage frames and asserts
exactly this: an error frame, never a crash.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

__all__ = [
    "PROTO_VERSION",
    "ProtocolError",
    "to_wire",
    "from_wire",
    "encode",
    "decode",
    "MESSAGE_TYPES",
    "REQUEST_TYPES",
    "REPLY_TYPES",
    # requests
    "CreateSession",
    "StepRequest",
    "RunToRequest",
    "AdvanceRequest",
    "SnapshotRequest",
    "CheckpointRequest",
    "DetachRequest",
    "ResumeRequest",
    "DeleteRequest",
    "ListSessionsRequest",
    "ListModelsRequest",
    "ShutdownRequest",
    # replies
    "SessionCreated",
    "StepReply",
    "StateSnapshot",
    "CheckpointReply",
    "Ack",
    "SessionList",
    "ModelList",
    "SessionError",
]

#: Schema version; bumped on any incompatible message change.
PROTO_VERSION = 1


class ProtocolError(ValueError):
    """A frame violated the wire schema (bad JSON, unknown type,
    missing/unexpected/mistyped field, version mismatch)."""


# --------------------------------------------------------------------- #
# Requests
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class CreateSession:
    """Create a session from a registered benchmark simulation.

    ``params`` maps :class:`~repro.core.param.Param` field names to
    JSON-typed override values; the server applies them over the model's
    ``default_param()``.  ``execution_backend`` may only be ``"serial"``
    — sessions live inside daemonic pool workers, which cannot fork.
    """

    model: str
    agents: int
    seed: int = 0
    params: dict = field(default_factory=dict)
    name: str = ""


@dataclass(frozen=True)
class StepRequest:
    """Advance a session by ``steps`` iterations (blocking).

    ``checksum=True`` returns the post-step state checksum
    (:func:`repro.verify.snapshot.state_checksum`) — the bitwise
    equivalence hook used by ``verify.replay.serve_equivalence``.
    """

    session: str
    steps: int = 1
    checksum: bool = False


@dataclass(frozen=True)
class RunToRequest:
    """Advance a session until its iteration counter reaches ``tick``
    (no-op if already there; never steps backwards)."""

    session: str
    tick: int
    checksum: bool = False


@dataclass(frozen=True)
class AdvanceRequest:
    """Start a background advance of ``steps`` iterations.

    Returns an :class:`Ack` immediately; the session steps on a server
    thread, one iteration per lock acquisition, so snapshots interleave.
    A second advance on an already-advancing session is rejected.
    """

    session: str
    steps: int


@dataclass(frozen=True)
class SnapshotRequest:
    """Read session state without stepping: iteration/time/population,
    merged metrics (per-session engine counters + ``serve:*``), and —
    with ``include_timeseries`` — the session's collected time series."""

    session: str
    include_timeseries: bool = False


@dataclass(frozen=True)
class CheckpointRequest:
    """Checkpoint the session to the server's spool directory.  The
    session stays resident; the reply carries the checkpoint path."""

    session: str


@dataclass(frozen=True)
class DetachRequest:
    """Checkpoint the session and release its worker memory.  The
    session id stays valid; the next touch resumes it transparently."""

    session: str


@dataclass(frozen=True)
class ResumeRequest:
    """Explicitly resume a detached/evicted session (touching it with
    any stepping request does the same implicitly)."""

    session: str


@dataclass(frozen=True)
class DeleteRequest:
    """Destroy the session: worker state, spooled checkpoint, id."""

    session: str


@dataclass(frozen=True)
class ListSessionsRequest:
    """Enumerate sessions (resident and detached)."""


@dataclass(frozen=True)
class ListModelsRequest:
    """Enumerate creatable models (the simulation registry)."""


@dataclass(frozen=True)
class ShutdownRequest:
    """Stop the server after acknowledging (socket transport only)."""


# --------------------------------------------------------------------- #
# Replies
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class SessionCreated:
    """Reply to :class:`CreateSession`."""

    session: str
    model: str
    agents: int
    seed: int
    iteration: int
    n_agents: int


@dataclass(frozen=True)
class StepReply:
    """Reply to :class:`StepRequest`/:class:`RunToRequest`.

    ``resumed`` flags that the touch transparently resumed an evicted
    session (the anti-vacuity signal serve_equivalence asserts on).
    """

    session: str
    steps_done: int
    iteration: int
    time: float
    n_agents: int
    checksum: str = ""
    resumed: bool = False


@dataclass(frozen=True)
class StateSnapshot:
    """Reply to :class:`SnapshotRequest`."""

    session: str
    iteration: int
    time: float
    n_agents: int
    resident: bool
    advancing: bool
    metrics: dict = field(default_factory=dict)
    timeseries: dict = field(default_factory=dict)


@dataclass(frozen=True)
class CheckpointReply:
    """Reply to :class:`CheckpointRequest`/:class:`DetachRequest`."""

    session: str
    path: str
    iteration: int


@dataclass(frozen=True)
class Ack:
    """Generic success reply (advance started, delete done, ...)."""

    session: str = ""
    detail: str = ""


@dataclass(frozen=True)
class SessionList:
    """Reply to :class:`ListSessionsRequest`; one summary dict per
    session (``id/model/agents/iteration/resident/advancing``)."""

    sessions: list = field(default_factory=list)


@dataclass(frozen=True)
class ModelList:
    """Reply to :class:`ListModelsRequest`."""

    models: list = field(default_factory=list)


@dataclass(frozen=True)
class SessionError:
    """Error reply.  ``code`` is machine-matchable: ``protocol``,
    ``unknown_session``, ``unknown_model``, ``unsupported_param``,
    ``invalid_request``, ``busy``, ``internal``."""

    code: str
    message: str
    session: str = ""


# --------------------------------------------------------------------- #
# Wire codec
# --------------------------------------------------------------------- #

REQUEST_TYPES: dict[str, type] = {
    "create_session": CreateSession,
    "step": StepRequest,
    "run_to": RunToRequest,
    "advance": AdvanceRequest,
    "snapshot": SnapshotRequest,
    "checkpoint": CheckpointRequest,
    "detach": DetachRequest,
    "resume": ResumeRequest,
    "delete": DeleteRequest,
    "list_sessions": ListSessionsRequest,
    "list_models": ListModelsRequest,
    "shutdown": ShutdownRequest,
}

REPLY_TYPES: dict[str, type] = {
    "session_created": SessionCreated,
    "step_reply": StepReply,
    "state_snapshot": StateSnapshot,
    "checkpoint_reply": CheckpointReply,
    "ack": Ack,
    "session_list": SessionList,
    "model_list": ModelList,
    "session_error": SessionError,
}

#: Every message type, by wire tag.
MESSAGE_TYPES: dict[str, type] = {**REQUEST_TYPES, **REPLY_TYPES}

_TAG_BY_CLASS = {cls: tag for tag, cls in MESSAGE_TYPES.items()}

#: JSON type(s) each annotation admits.  ``float`` accepts ints (JSON
#: has one number type); ``dict``/``list`` container *contents* are
#: free-form JSON, as declared.
_WIRE_TYPES = {
    "str": str,
    "int": int,
    "float": (int, float),
    "bool": bool,
    "dict": dict,
    "list": list,
}


def to_wire(msg) -> dict:
    """Message → plain JSON-ready dict with the envelope fields."""
    cls = type(msg)
    tag = _TAG_BY_CLASS.get(cls)
    if tag is None:
        raise ProtocolError(f"not a protocol message: {cls.__name__}")
    body = dataclasses.asdict(msg)
    return {"type": tag, "proto_version": PROTO_VERSION, **body}


def from_wire(obj) -> object:
    """Validated message from a decoded JSON object.

    Rejects (``ProtocolError``): non-objects, missing/unsupported
    ``proto_version``, unknown ``type``, unknown fields, missing
    required fields, and JSON values whose type does not match the
    dataclass annotation.
    """
    if not isinstance(obj, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(obj).__name__}")
    version = obj.get("proto_version")
    if version != PROTO_VERSION:
        raise ProtocolError(
            f"unsupported proto_version {version!r} (want {PROTO_VERSION})"
        )
    tag = obj.get("type")
    # tag may be any JSON value (fuzzed frames send lists/objects); only
    # strings can possibly be registered tags.
    cls = MESSAGE_TYPES.get(tag) if isinstance(tag, str) else None
    if cls is None:
        raise ProtocolError(f"unknown message type {tag!r}")
    body = {k: v for k, v in obj.items() if k not in ("type", "proto_version")}
    fields = {f.name: f for f in dataclasses.fields(cls)}
    unknown = set(body) - set(fields)
    if unknown:
        raise ProtocolError(f"{tag}: unexpected fields {sorted(unknown)}")
    for name, f in fields.items():
        if name not in body:
            if (f.default is dataclasses.MISSING
                    and f.default_factory is dataclasses.MISSING):
                raise ProtocolError(f"{tag}: missing required field {name!r}")
            continue
        want = _WIRE_TYPES.get(f.type)
        value = body[name]
        # bool is an int subclass in Python but a distinct JSON type.
        bad = isinstance(value, bool) and f.type in ("int", "float")
        if want is not None and (bad or not isinstance(value, want)):
            raise ProtocolError(
                f"{tag}.{name}: expected {f.type}, got {type(value).__name__}"
            )
    return cls(**body)


def encode(msg) -> bytes:
    """Message → one ndjson frame (newline-terminated UTF-8 bytes)."""
    return (json.dumps(to_wire(msg), separators=(",", ":")) + "\n").encode()


def decode(line: bytes | str) -> object:
    """One ndjson frame → validated message."""
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"bad JSON frame: {exc}") from None
    return from_wire(obj)
