"""Client facade: one API, two transports.

:class:`SessionClient` speaks the typed protocol of
:mod:`repro.serve.protocol` either **in-process** (directly into a
:class:`~repro.serve.pool.SessionPool` — no sockets, same replies) or
over the **socket** transport (blocking ndjson client of a running
``python -m repro serve``).  Because both paths share the same frozen
dataclasses and the same pool dispatcher, behavior cannot diverge
between them; the equivalence suite exercises both.

Quickstart::

    from repro import SessionClient

    with SessionClient.in_process(workers=2) as client:
        h = client.create_session("cell_proliferation", agents=500, seed=1)
        h.step(10)
        snap = h.snapshot()
        h.detach()            # checkpoint + free memory; id stays valid
        h.step(1)             # transparent resume, bitwise-continuous
        h.delete()

Errors come back as :class:`ServeError` carrying the protocol error
code (``unknown_session``, ``unsupported_param``, ...).
"""

from __future__ import annotations

import socket

from repro.serve import protocol as P

__all__ = ["ServeError", "SessionClient", "SessionHandle"]


class ServeError(RuntimeError):
    """A request was answered with a :class:`~repro.serve.protocol.
    SessionError`; ``code`` and ``session`` carry its fields."""

    def __init__(self, error: P.SessionError):
        super().__init__(f"[{error.code}] {error.message}")
        self.code = error.code
        self.session = error.session


class _InProcessTransport:
    def __init__(self, pool, owns_pool: bool):
        self.pool = pool
        self._owns_pool = owns_pool

    def request(self, msg):
        return self.pool.handle(msg)

    def close(self) -> None:
        """Close the transport (and shut down an owned pool)."""
        if self._owns_pool:
            self.pool.shutdown()


class _SocketTransport:
    def __init__(self, host: str, port: int, timeout: float):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")

    def request(self, msg):
        self._sock.sendall(P.encode(msg))
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return P.decode(line)

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()


class SessionHandle:
    """Convenience wrapper bound to one session id."""

    def __init__(self, client: "SessionClient", session: str):
        self.client = client
        self.session = session

    def step(self, steps: int = 1, checksum: bool = False) -> P.StepReply:
        """Advance ``steps`` iterations; ``checksum=True`` adds the
        post-step state checksum to the reply."""
        return self.client.request(
            P.StepRequest(session=self.session, steps=steps,
                          checksum=checksum)
        )

    def run_to(self, tick: int, checksum: bool = False) -> P.StepReply:
        """Advance until the iteration counter reaches ``tick``
        (no-op if already past it)."""
        return self.client.request(
            P.RunToRequest(session=self.session, tick=tick,
                           checksum=checksum)
        )

    def advance(self, steps: int) -> P.Ack:
        """Start a background advance; returns immediately."""
        return self.client.request(
            P.AdvanceRequest(session=self.session, steps=steps)
        )

    def snapshot(self, include_timeseries: bool = False) -> P.StateSnapshot:
        """Read state without stepping: status, metrics, and —
        on request — collected time series."""
        return self.client.request(
            P.SnapshotRequest(session=self.session,
                              include_timeseries=include_timeseries)
        )

    def checkpoint(self) -> P.CheckpointReply:
        """Checkpoint to the server spool; session stays resident."""
        return self.client.request(
            P.CheckpointRequest(session=self.session))

    def detach(self) -> P.CheckpointReply:
        """Checkpoint and free worker memory; the id stays valid
        and any later touch resumes transparently."""
        return self.client.request(P.DetachRequest(session=self.session))

    def resume(self) -> P.StepReply:
        """Explicitly resume a detached/evicted session."""
        return self.client.request(P.ResumeRequest(session=self.session))

    def delete(self) -> P.Ack:
        """Destroy the session (worker state, spooled checkpoint, id)."""
        return self.client.request(P.DeleteRequest(session=self.session))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SessionHandle({self.session!r})"


class SessionClient:
    """Typed session-protocol client; construct via
    :meth:`in_process` or :meth:`connect`."""

    def __init__(self, transport):
        self._transport = transport

    @classmethod
    def in_process(cls, pool=None, **pool_kwargs) -> "SessionClient":
        """Client over a pool in this process (created from
        ``pool_kwargs`` and owned by the client unless ``pool`` is
        given)."""
        from repro.serve.pool import SessionPool

        owns = pool is None
        if pool is None:
            pool = SessionPool(**pool_kwargs)
        return cls(_InProcessTransport(pool, owns))

    @classmethod
    def connect(cls, host: str = "127.0.0.1", port: int = 7464,
                timeout: float = 300.0) -> "SessionClient":
        """Client over a socket to a running server."""
        return cls(_SocketTransport(host, port, timeout))

    @property
    def pool(self):
        """The underlying pool (in-process transport only, else None)."""
        return getattr(self._transport, "pool", None)

    def request(self, msg):
        """Send one typed request; return the typed reply.  A
        ``SessionError`` reply raises :class:`ServeError`."""
        reply = self._transport.request(msg)
        if isinstance(reply, P.SessionError):
            raise ServeError(reply)
        return reply

    # -- conveniences --------------------------------------------------- #

    def create_session(
        self,
        model: str,
        agents: int,
        seed: int = 0,
        params: dict | None = None,
        name: str = "",
    ) -> SessionHandle:
        """Create a session and return its handle."""
        reply = self.request(P.CreateSession(
            model=model, agents=int(agents), seed=int(seed),
            params=dict(params or {}), name=name,
        ))
        return SessionHandle(self, reply.session)

    def session(self, session_id: str) -> SessionHandle:
        """Handle for an existing session id (e.g. after reconnecting)."""
        return SessionHandle(self, session_id)

    def sessions(self) -> list:
        """Summaries of every live session on the server."""
        return self.request(P.ListSessionsRequest()).sessions

    def models(self) -> list:
        """Creatable model names (the simulation registry)."""
        return self.request(P.ListModelsRequest()).models

    def shutdown_server(self) -> P.Ack:
        """Ask a socket server to stop accepting and exit."""
        return self.request(P.ShutdownRequest())

    def close(self) -> None:
        """Close the transport (and shut down an owned in-process pool)."""
        self._transport.close()

    def __enter__(self) -> "SessionClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
