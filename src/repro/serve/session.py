"""Worker-side session hosting.

A serve-pool worker is one persistent forked process (the same warm-pool
shape as :mod:`repro.parallel.process_backend`, but hosting whole
*simulations* instead of kernel chunks).  Each worker owns the
:class:`~repro.core.simulation.Simulation` objects of the sessions
assigned to it; the host talks to it over an inbox/reply queue pair with
plain-tuple commands, one outstanding command per worker at a time.

Sessions are always built ``execution_backend="serial"`` — a worker is
daemonic and may not fork grandchildren — with
``shared_storage=True``/``soa_arena=True``, so each session's whole
agent state is **one named shared-memory block** the host (or a
diagnostic tool) can attach zero-copy by segment name
(:func:`repro.parallel.shm.attach_block`).  PR 2's equivalence guarantee
(shm-serial is bitwise-identical to private-serial) is what makes served
sessions reproduce direct runs exactly.

Worker command set (host → inbox)::

    ("create",     sid, spec)                 build from the registry
    ("restore",    sid, spec, ckpt_path)      rebuild + restore_checkpoint
    ("step",       sid, steps, want_checksum)
    ("step_chunk", sid, max_steps)            one scheduling quantum
    ("run_to",     sid, tick, want_checksum)
    ("snapshot",   sid, include_timeseries)
    ("checkpoint", sid, path, extra_meta)
    ("layout",     sid)                       shm segment name + offsets
    ("delete",     sid)
    ("stop",)

Replies (worker → its reply queue)::

    ("ok",  sid, payload_dict)
    ("err", sid, code, message)

``spec`` is the session's rebuild recipe ``{"model", "agents", "seed",
"params"}``; it is also stored as checkpoint ``extra_meta`` so *any*
worker — or a restarted server — can resume an evicted session.
"""

from __future__ import annotations

import numpy as np

from repro.core.timeseries import TimeSeriesOperation

__all__ = [
    "SessionSetupError",
    "build_session_sim",
    "HostedSession",
    "serve_worker_main",
]

#: Param fields a session spec may not override (the hosting model
#: forces them; ``execution_backend`` must stay serial inside a
#: daemonic worker).
_FORCED_PARAMS = ("shared_storage", "soa_arena")


class SessionSetupError(ValueError):
    """A session spec cannot be built (unknown model, bad param)."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


def build_session_sim(spec: dict):
    """Build a hostable Simulation from a session spec.

    Applies client param overrides on top of the model's
    ``default_param()``, then forces the hosting invariants: serial
    execution (workers are daemonic) and the consolidated shm arena (one
    attachable block per session).
    """
    from repro.core.param import ParamError
    from repro.simulations.registry import get_simulation

    try:
        bench = get_simulation(str(spec["model"]))
    except ValueError as exc:
        raise SessionSetupError("unknown_model", str(exc)) from None
    overrides = dict(spec.get("params") or {})
    backend = overrides.pop("execution_backend", "serial")
    if backend != "serial":
        raise SessionSetupError(
            "unsupported_param",
            f"execution_backend={backend!r} is not hostable: sessions run "
            "inside daemonic pool workers, which cannot fork; only "
            "'serial' is supported",
        )
    for name in _FORCED_PARAMS:
        overrides.pop(name, None)
    try:
        param = bench.default_param().with_(
            **overrides,
            execution_backend="serial",
            shared_storage=True,
            soa_arena=True,
        )
        sim = bench.build(
            int(spec["agents"]), param=param, seed=int(spec["seed"])
        )
    except (ParamError, TypeError, ValueError) as exc:
        raise SessionSetupError("unsupported_param", str(exc)) from None
    return sim


def _jsonable(value):
    """Metric/timeseries values → JSON-ready (arrays become lists)."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    return value


class HostedSession:
    """One session living inside a worker: the Simulation plus its
    rebuild spec."""

    def __init__(self, sid: str, spec: dict, sim):
        self.sid = sid
        self.spec = spec
        self.sim = sim

    @classmethod
    def create(cls, sid: str, spec: dict) -> "HostedSession":
        return cls(sid, spec, build_session_sim(spec))

    @classmethod
    def restore(cls, sid: str, spec: dict, ckpt_path: str) -> "HostedSession":
        """Rebuild from the spec, then overwrite state from the
        checkpoint.  Building with the *same seed* re-attaches behaviors
        in the same registration order, and the checkpoint's ``__rng__``
        payload rewinds the generator — the continuation is
        bitwise-identical to never having been evicted."""
        from repro.core.checkpoint import restore_checkpoint

        session = cls.create(sid, spec)
        restore_checkpoint(session.sim, ckpt_path)
        return session

    # -- operations ----------------------------------------------------- #

    def status(self) -> dict:
        """Current ``{iteration, time, n_agents}``."""
        sim = self.sim
        return {
            "iteration": int(sim.scheduler.iteration),
            "time": float(sim.time),
            "n_agents": int(sim.rm.n),
        }

    def step(self, steps: int, want_checksum: bool) -> dict:
        """Advance and return status (+ state checksum on request)."""
        self.sim.simulate(int(steps))
        out = self.status()
        out["steps_done"] = int(steps)
        out["checksum"] = self.checksum() if want_checksum else ""
        return out

    def step_chunk(self, max_steps: int) -> dict:
        """Advance by one scheduling quantum (≤ ``max_steps`` ticks).

        One normal tick — or, when the session's parameters enable
        ``event_scheduling`` and the scene is quiescent, one horizon jump
        covering up to ``max_steps`` ticks at O(1) cost.  The pool's
        background advance loops on this so idle sessions cost one RPC
        per jump instead of one per tick.
        """
        done = self.sim.advance(int(max_steps))
        out = self.status()
        out["steps_done"] = int(done)
        out["checksum"] = ""
        return out

    def run_to(self, tick: int, want_checksum: bool) -> dict:
        """Step forward until ``tick`` (never backwards)."""
        steps = max(0, int(tick) - int(self.sim.scheduler.iteration))
        return self.step(steps, want_checksum)

    def checksum(self) -> str:
        """Full observable-state digest (verify.snapshot)."""
        from repro.verify.snapshot import state_checksum

        return state_checksum(self.sim)

    def snapshot(self, include_timeseries: bool) -> dict:
        """Status + engine metrics (+ collected time series)."""
        out = self.status()
        out["metrics"] = {
            k: _jsonable(v)
            for k, v in self.sim.obs.registry.snapshot().items()
        }
        series: dict = {}
        if include_timeseries:
            for op in self.sim.operations:
                if isinstance(op, TimeSeriesOperation):
                    for name, col in op.as_dict().items():
                        series[name] = _jsonable(col)
        out["timeseries"] = series
        return out

    def checkpoint(self, path: str, extra_meta: dict | None) -> dict:
        """Save a format-v2 checkpoint to ``path``; returns status."""
        from repro.core.checkpoint import save_checkpoint

        save_checkpoint(self.sim, path, extra_meta=extra_meta)
        out = self.status()
        out["path"] = str(path)
        return out

    def layout(self) -> dict:
        """Shm coordinates of the session's consolidated state block."""
        from repro.parallel.shm import SOA_BLOCK

        rm = self.sim.rm
        soa = rm.soa
        block = rm.arena._blocks.get(SOA_BLOCK)
        return {
            "segment": block.shm.name if block is not None else "",
            "layout": soa.layout_meta() if soa is not None else {},
            "n": int(rm.n),
        }

    def close(self) -> None:
        """Close the hosted simulation (frees its shm segments)."""
        self.sim.close()


def serve_worker_main(worker_id: int, inbox, replies) -> None:
    """Worker loop: execute commands until ``("stop",)``.

    Every command gets exactly one reply.  Exceptions never kill the
    loop: setup failures map to their protocol error code, anything else
    to ``internal`` — the host turns both into ``SessionError`` frames.
    """
    sessions: dict[str, HostedSession] = {}
    while True:
        msg = inbox.get()
        op = msg[0]
        if op == "stop":
            for session in sessions.values():
                try:
                    session.close()
                except Exception:
                    pass
            sessions.clear()
            replies.put(("ok", "", {"worker": worker_id}))
            return
        sid = msg[1]
        try:
            if op == "create":
                sessions[sid] = HostedSession.create(sid, msg[2])
                replies.put(("ok", sid, sessions[sid].status()))
            elif op == "restore":
                sessions[sid] = HostedSession.restore(sid, msg[2], msg[3])
                replies.put(("ok", sid, sessions[sid].status()))
            elif op == "step":
                replies.put(("ok", sid, sessions[sid].step(msg[2], msg[3])))
            elif op == "step_chunk":
                replies.put(("ok", sid, sessions[sid].step_chunk(msg[2])))
            elif op == "run_to":
                replies.put(("ok", sid, sessions[sid].run_to(msg[2], msg[3])))
            elif op == "snapshot":
                replies.put(("ok", sid, sessions[sid].snapshot(msg[2])))
            elif op == "checkpoint":
                replies.put(
                    ("ok", sid, sessions[sid].checkpoint(msg[2], msg[3]))
                )
            elif op == "layout":
                replies.put(("ok", sid, sessions[sid].layout()))
            elif op == "delete":
                session = sessions.pop(sid, None)
                if session is not None:
                    session.close()
                replies.put(("ok", sid, {}))
            else:
                replies.put(("err", sid, "invalid_request",
                             f"unknown worker op {op!r}"))
        except SessionSetupError as exc:
            replies.put(("err", sid, exc.code, str(exc)))
        except KeyError:
            replies.put(("err", sid, "unknown_session",
                         f"worker {worker_id} does not host {sid!r}"))
        except Exception as exc:  # noqa: BLE001 - worker must survive
            replies.put(("err", sid, "internal",
                         f"{type(exc).__name__}: {exc}"))
