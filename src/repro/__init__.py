"""repro — Python reproduction of *High-Performance and Scalable Agent-Based
Simulation with BioDynaMo* (PPoPP 2023).

Curated public API — the pieces a model author needs::

    from repro import Simulation, Param, Behavior, GrowDivide
    from repro import UniformGridEnvironment, Observability
    from repro.parallel import Machine, SYSTEM_A

Everything in ``__all__`` below is stable; engine internals remain
importable from their defining modules but carry no compatibility
promise.  Names that moved keep working at their old import path
through ``DeprecationWarning`` shims for one release.

See DESIGN.md for the system inventory, EXPERIMENTS.md for the
paper-figure reproduction index, and docs/observability.md for the
tracing/metrics layer (``sim.obs``).
"""

import warnings as _warnings

from repro.core import (
    Agent,
    AgentOperation,
    Behavior,
    ExportOperation,
    GeneRegulation,
    Operation,
    OpKind,
    Param,
    ParamError,
    ResourceManager,
    Scheduler,
    Simulation,
    StandaloneOperation,
    TimeSeriesOperation,
    restore_checkpoint,
    save_checkpoint,
)
from repro.core.behaviors_lib import (
    Chemotaxis,
    Confinement,
    GrowDivide,
    Infection,
    RandomWalk,
    Recovery,
    Secretion,
    StochasticDeath,
)
from repro.core.diffusion import DiffusionGrid
from repro.env import (
    BruteForceEnvironment,
    Environment,
    KDTreeEnvironment,
    OctreeEnvironment,
    UniformGridEnvironment,
    make_environment,
)
from repro.obs import (
    MetricsRegistry,
    Observability,
    Tracer,
    chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.parallel import Machine, SYSTEM_A, SYSTEM_B, SYSTEM_C

__version__ = "1.1.0"

__all__ = [
    # Core engine
    "Simulation",
    "Param",
    "ParamError",
    "Scheduler",
    "Behavior",
    "Agent",
    "ResourceManager",
    "DiffusionGrid",
    # Operations
    "Operation",
    "AgentOperation",
    "StandaloneOperation",
    "OpKind",
    "TimeSeriesOperation",
    "ExportOperation",
    "GeneRegulation",
    # Behaviors library
    "GrowDivide",
    "RandomWalk",
    "Chemotaxis",
    "Secretion",
    "Infection",
    "Recovery",
    "Confinement",
    "StochasticDeath",
    # Environments
    "Environment",
    "UniformGridEnvironment",
    "KDTreeEnvironment",
    "OctreeEnvironment",
    "BruteForceEnvironment",
    "make_environment",
    # Observability
    "Observability",
    "MetricsRegistry",
    "Tracer",
    "chrome_trace",
    "write_chrome_trace",
    "write_metrics",
    # Checkpointing
    "save_checkpoint",
    "restore_checkpoint",
    "read_checkpoint_meta",
    # Lifecycle
    "SimulationState",
    "LifecycleError",
    # Session server (lazy: importing repro must not pay for asyncio/mp)
    "SessionClient",
    "SessionHandle",
    "SessionPool",
    "ServerThread",
    "ServeError",
    "StateView",
    "serve_forever",
    "PROTO_VERSION",
    "ProtocolError",
    # Virtual machines
    "Machine",
    "SYSTEM_A",
    "SYSTEM_B",
    "SYSTEM_C",
    "__version__",
]

#: PEP 562 lazy exports: resolved on first attribute access, cached in
#: the module dict.  Keeps ``import repro`` free of the serve stack
#: (multiprocessing, asyncio) while presenting one curated namespace.
_LAZY_EXPORTS = {
    "SimulationState": ("repro.core", "SimulationState"),
    "LifecycleError": ("repro.core", "LifecycleError"),
    "read_checkpoint_meta": ("repro.core", "read_checkpoint_meta"),
    "SessionClient": ("repro.serve", "SessionClient"),
    "SessionHandle": ("repro.serve", "SessionHandle"),
    "SessionPool": ("repro.serve", "SessionPool"),
    "ServerThread": ("repro.serve", "ServerThread"),
    "ServeError": ("repro.serve", "ServeError"),
    "StateView": ("repro.serve", "StateView"),
    "serve_forever": ("repro.serve", "serve_forever"),
    "PROTO_VERSION": ("repro.serve", "PROTO_VERSION"),
    "ProtocolError": ("repro.serve", "ProtocolError"),
}

#: Old import paths kept alive one release: ``repro.<old>`` resolves to
#: the current home with a DeprecationWarning.
_DEPRECATED_ALIASES = {
    # The checksum/trace helpers predate repro.obs and were reachable as
    # engine internals; point old code at the curated surface.
    "NullTracer": ("repro.obs", "NullTracer"),
    "NULL_TRACER": ("repro.obs", "NULL_TRACER"),
    "metrics_snapshot": ("repro.obs", "metrics_snapshot"),
    # MOVE_EPSILON historically rode on the scheduler module.
    "MOVE_EPSILON": ("repro.parallel.backend", "MOVE_EPSILON"),
}


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS) | set(_DEPRECATED_ALIASES))


def __getattr__(name: str):
    lazy = _LAZY_EXPORTS.get(name)
    if lazy is not None:
        import importlib

        module, attr = lazy
        value = getattr(importlib.import_module(module), attr)
        globals()[name] = value  # cache: next access skips __getattr__
        return value
    target = _DEPRECATED_ALIASES.get(name)
    if target is not None:
        module, attr = target
        _warnings.warn(
            f"importing {name!r} from 'repro' is deprecated; "
            f"import it from {module!r}",
            DeprecationWarning,
            stacklevel=2,
        )
        import importlib

        return getattr(importlib.import_module(module), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
