"""repro — Python reproduction of *High-Performance and Scalable Agent-Based
Simulation with BioDynaMo* (PPoPP 2023).

Public API re-exports the pieces a model author needs::

    from repro import Simulation, Param, Behavior
    from repro.core.behaviors_lib import GrowDivide
    from repro.parallel import Machine, SYSTEM_A

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproduction index.
"""

from repro.core import (
    Agent,
    AgentOperation,
    Behavior,
    ExportOperation,
    GeneRegulation,
    Operation,
    OpKind,
    Param,
    ResourceManager,
    Simulation,
    StandaloneOperation,
    TimeSeriesOperation,
    restore_checkpoint,
    save_checkpoint,
)
from repro.core.diffusion import DiffusionGrid
from repro.parallel import Machine, SYSTEM_A, SYSTEM_B, SYSTEM_C

__version__ = "1.0.0"

__all__ = [
    "Simulation",
    "Param",
    "Behavior",
    "Agent",
    "ResourceManager",
    "DiffusionGrid",
    "Operation",
    "AgentOperation",
    "StandaloneOperation",
    "OpKind",
    "TimeSeriesOperation",
    "ExportOperation",
    "GeneRegulation",
    "save_checkpoint",
    "restore_checkpoint",
    "Machine",
    "SYSTEM_A",
    "SYSTEM_B",
    "SYSTEM_C",
    "__version__",
]
