"""Model calibration and parameter exploration (paper §1).

The paper motivates engine performance with the model-development loop:
*"An optimization algorithm generates a parameter set, executes the
model, and evaluates the error with respect to observed data until the
error converges to a local or global minimum ... Consequently, the model
must be simulated many times."*  This subpackage implements that loop:

- :class:`ParameterSpec` — a named, bounded (optionally log-scaled)
  model parameter;
- :func:`sweep` — exhaustive grid exploration over parameter values;
- :class:`RandomSearchCalibrator` — derivative-free calibration against
  observed data, with iterative range contraction around the incumbent
  (the simple, robust default for noisy ABM objectives);
- uncertainty analysis via repeated evaluation with different seeds
  (:func:`repeat_with_seeds`), as in the paper's reference to
  global uncertainty/sensitivity analysis.
"""

from repro.calibration.search import (
    CalibrationResult,
    ParameterSpec,
    RandomSearchCalibrator,
    SweepRow,
    repeat_with_seeds,
    sweep,
)

__all__ = [
    "ParameterSpec",
    "SweepRow",
    "sweep",
    "CalibrationResult",
    "RandomSearchCalibrator",
    "repeat_with_seeds",
]
