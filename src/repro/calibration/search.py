"""Parameter sweeps and random-search calibration."""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ParameterSpec",
    "SweepRow",
    "sweep",
    "CalibrationResult",
    "RandomSearchCalibrator",
    "repeat_with_seeds",
]


@dataclass(frozen=True)
class ParameterSpec:
    """A bounded model parameter.

    ``log=True`` samples on a log scale (for rates spanning decades).
    """

    name: str
    low: float
    high: float
    log: bool = False

    def __post_init__(self):
        if not self.high > self.low:
            raise ValueError(f"{self.name}: high must exceed low")
        if self.log and self.low <= 0:
            raise ValueError(f"{self.name}: log scale needs positive bounds")

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value from the parameter range."""
        if self.log:
            return float(np.exp(rng.uniform(np.log(self.low), np.log(self.high))))
        return float(rng.uniform(self.low, self.high))

    def grid(self, points: int) -> np.ndarray:
        """Evenly (or log-evenly) spaced values covering the range."""
        if self.log:
            return np.exp(np.linspace(np.log(self.low), np.log(self.high), points))
        return np.linspace(self.low, self.high, points)

    def clip(self, value: float) -> float:
        """Clamp ``value`` into the parameter range."""
        return float(min(max(value, self.low), self.high))

    def contracted(self, center: float, factor: float) -> "ParameterSpec":
        """A spec shrunk around ``center`` by ``factor`` (range contraction)."""
        if self.log:
            half = (math.log(self.high) - math.log(self.low)) * factor / 2
            c = math.log(self.clip(center))
            lo = math.exp(max(c - half, math.log(self.low)))
            hi = math.exp(min(c + half, math.log(self.high)))
        else:
            half = (self.high - self.low) * factor / 2
            lo = max(center - half, self.low)
            hi = min(center + half, self.high)
        if hi <= lo:  # degenerate after clipping: keep a sliver
            hi = lo + (self.high - self.low) * 1e-6
        return ParameterSpec(self.name, lo, hi, self.log)


@dataclass
class SweepRow:
    params: dict[str, float]
    metric: float


def sweep(run_fn, specs: list[ParameterSpec], points: int = 5) -> list[SweepRow]:
    """Exhaustive grid sweep: ``run_fn(params) -> metric`` on every
    combination of ``points`` values per parameter."""
    if points < 1:
        raise ValueError("points must be >= 1")
    axes = [spec.grid(points) for spec in specs]
    rows = []
    for combo in itertools.product(*axes):
        params = {s.name: float(v) for s, v in zip(specs, combo)}
        rows.append(SweepRow(params, float(run_fn(params))))
    return rows


@dataclass
class CalibrationResult:
    best_params: dict[str, float]
    best_error: float
    evaluations: int
    history: list[tuple[dict[str, float], float]] = field(default_factory=list)

    @property
    def error_curve(self) -> np.ndarray:
        """Running best error after each evaluation."""
        return np.minimum.accumulate([e for _, e in self.history])


class RandomSearchCalibrator:
    """Random search with iterative range contraction.

    Each round draws ``trials_per_round`` parameter sets from the current
    ranges, evaluates ``error_fn(params)``, and contracts every range
    around the incumbent by ``contraction`` — a derivative-free scheme
    that tolerates the noisy objectives ABMs produce.
    """

    def __init__(
        self,
        specs: list[ParameterSpec],
        trials_per_round: int = 10,
        rounds: int = 4,
        contraction: float = 0.5,
        seed: int = 0,
    ):
        if not specs:
            raise ValueError("need at least one parameter")
        if not 0 < contraction <= 1:
            raise ValueError("contraction must be in (0, 1]")
        self.specs = list(specs)
        self.trials_per_round = trials_per_round
        self.rounds = rounds
        self.contraction = contraction
        self.seed = seed

    def calibrate(self, error_fn) -> CalibrationResult:
        """Minimize ``error_fn(params) -> float >= 0``."""
        rng = np.random.default_rng(self.seed)
        specs = list(self.specs)
        best_params: dict[str, float] | None = None
        best_error = np.inf
        history: list[tuple[dict[str, float], float]] = []

        for _ in range(self.rounds):
            for _ in range(self.trials_per_round):
                params = {s.name: s.sample(rng) for s in specs}
                err = float(error_fn(params))
                history.append((params, err))
                if err < best_error:
                    best_error = err
                    best_params = params
            specs = [
                s.contracted(best_params[s.name], self.contraction)
                for s in specs
            ]
        return CalibrationResult(
            best_params=best_params,
            best_error=best_error,
            evaluations=len(history),
            history=history,
        )


def repeat_with_seeds(run_fn, params: dict[str, float], seeds) -> np.ndarray:
    """Uncertainty analysis: evaluate the same parameter set under
    different random seeds; returns the per-seed metrics."""
    return np.asarray([float(run_fn(params, seed=s)) for s in seeds])
