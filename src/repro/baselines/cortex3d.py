"""Cortex3D-like baseline engine.

Cortex3D (Zubler & Douglas 2009) keeps one Java object per physical sphere,
computes neighborhoods from a Delaunay triangulation that is maintained
every step, and iterates agents in a single thread.  This module mirrors
that architecture in Python: ``PhysicalSphere`` objects with attribute
dictionaries, a scipy Delaunay triangulation rebuilt every iteration, and
per-agent/per-neighbor interpreted loops.  No vectorization, no spatial
grid, no parallelism — the overheads the paper's §6.6 comparison measures.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Delaunay

from repro.baselines.base import BaselineEngine, BaselineResult

__all__ = ["Cortex3DLike", "PhysicalSphere"]


class PhysicalSphere:
    """One agent: a heap-allocated object, as in Cortex3D."""

    def __init__(self, position, diameter):
        self.position = [float(position[0]), float(position[1]), float(position[2])]
        self.diameter = float(diameter)
        self.force = [0.0, 0.0, 0.0]
        self.state = 0

    def distance_to(self, other: "PhysicalSphere") -> float:
        """Euclidean distance between the two sphere centers."""
        dx = self.position[0] - other.position[0]
        dy = self.position[1] - other.position[1]
        dz = self.position[2] - other.position[2]
        return (dx * dx + dy * dy + dz * dz) ** 0.5


class Cortex3DLike(BaselineEngine):
    name = "cortex3d_like"

    def __init__(self, repulsion: float = 2.0, dt: float = 0.01):
        self.repulsion = repulsion
        self.dt = dt

    # ------------------------------------------------------------------ #

    def _delaunay_neighbors(self, spheres) -> list[set]:
        pts = np.array([s.position for s in spheres])
        neighbors = [set() for _ in spheres]
        if len(spheres) < 5:
            for i in range(len(spheres)):
                neighbors[i] = set(range(len(spheres))) - {i}
            return neighbors
        tri = Delaunay(pts)
        for simplex in tri.simplices:
            for a in simplex:
                for b in simplex:
                    if a != b:
                        neighbors[a].add(int(b))
        return neighbors

    def _mechanics_step(self, spheres, neighbors) -> None:
        for i, s in enumerate(spheres):
            fx = fy = fz = 0.0
            for j in neighbors[i]:
                o = spheres[j]
                dist = s.distance_to(o)
                overlap = (s.diameter + o.diameter) / 2.0 - dist
                if overlap > 0.0 and dist > 1e-12:
                    mag = self.repulsion * overlap / dist
                    fx += (s.position[0] - o.position[0]) * mag
                    fy += (s.position[1] - o.position[1]) * mag
                    fz += (s.position[2] - o.position[2]) * mag
            s.force = [fx, fy, fz]
        for s in spheres:
            s.position[0] += s.force[0] * self.dt
            s.position[1] += s.force[1] * self.dt
            s.position[2] += s.force[2] * self.dt

    # ------------------------------------------------------------------ #

    def run_proliferation(self, num_agents, iterations, seed=0) -> BaselineResult:
        def body():
            rng = np.random.default_rng(seed)
            initial = max(4, num_agents // 2)
            side = int(np.ceil(initial ** (1 / 3)))
            spheres = []
            for k in range(initial):
                x, r = divmod(k, side * side)
                y, z = divmod(r, side)
                spheres.append(PhysicalSphere((x * 12.0, y * 12.0, z * 12.0), 10.0))
            for _ in range(iterations):
                neighbors = self._delaunay_neighbors(spheres)
                self._mechanics_step(spheres, neighbors)
                # Growth and division, one agent at a time.
                for s in list(spheres):
                    s.diameter += 120.0 * self.dt
                    if s.diameter >= 14.0 and len(spheres) < num_agents:
                        s.diameter /= 2 ** (1 / 3)
                        direction = rng.normal(size=3)
                        direction /= np.linalg.norm(direction)
                        child_pos = [
                            s.position[d] + direction[d] * s.diameter / 2
                            for d in range(3)
                        ]
                        spheres.append(PhysicalSphere(child_pos, s.diameter))
            return [s.position for s in spheres]

        return self._measure("proliferation", num_agents, iterations, body)

    def run_epidemiology(self, num_agents, iterations, seed=0) -> BaselineResult:
        def body():
            rng = np.random.default_rng(seed)
            span = 6.0 * max(4.0, (num_agents ** (1 / 3)) * 3.0)
            spheres = [
                PhysicalSphere(rng.uniform(0, span, 3), 2.0)
                for _ in range(num_agents)
            ]
            for s in spheres[: max(1, num_agents // 500)]:
                s.state = 1
            radius = 6.0
            for _ in range(iterations):
                neighbors = self._delaunay_neighbors(spheres)
                for s in spheres:  # random walk, one agent at a time
                    step = rng.normal(scale=radius * 0.4, size=3)
                    s.position[0] += step[0]
                    s.position[1] += step[1]
                    s.position[2] += step[2]
                for i, s in enumerate(spheres):  # infection
                    if s.state == 1:
                        for j in neighbors[i]:
                            o = spheres[j]
                            if o.state == 0 and s.distance_to(o) <= radius:
                                if rng.random() < 0.25:
                                    o.state = 1
                        if rng.random() < 0.03:
                            s.state = 2
            return [s.position for s in spheres]

        return self._measure("epidemiology", num_agents, iterations, body)

    def run_neurite_growth(self, num_agents, iterations, seed=0) -> BaselineResult:
        """Single neuron arbor growth — the Cortex3D specialty."""

        def body():
            rng = np.random.default_rng(seed)
            spheres = [PhysicalSphere((50.0, 50.0, 50.0), 12.0)]
            tips = []
            for _ in range(3):
                axis = rng.normal(size=3)
                axis /= np.linalg.norm(axis)
                tip = PhysicalSphere(50.0 + axis * 8.0, 2.0)
                tip.axis = axis
                tip.length = 2.0
                spheres.append(tip)
                tips.append(tip)
            for _ in range(iterations):
                neighbors = self._delaunay_neighbors(spheres)
                self._mechanics_step(spheres, neighbors)
                for tip in list(tips):
                    axis = tip.axis + rng.normal(scale=0.15, size=3)
                    axis /= np.linalg.norm(axis)
                    tip.axis = axis
                    step = 80.0 * self.dt
                    for d in range(3):
                        tip.position[d] += axis[d] * step
                    tip.length += step
                    if tip.length > 6.0 and len(spheres) < num_agents:
                        tip.length = 0.0
                        new = PhysicalSphere(list(tip.position), tip.diameter)
                        new.axis = axis
                        new.length = 0.5
                        spheres.append(new)
                        tips.append(new)
                        tips.remove(tip)
                    if rng.random() < 0.03 and len(spheres) + 2 <= num_agents:
                        for _ in range(2):
                            branch_axis = tip.axis + rng.normal(scale=0.6, size=3)
                            branch_axis /= np.linalg.norm(branch_axis)
                            new = PhysicalSphere(list(tip.position), tip.diameter)
                            new.axis = branch_axis
                            new.length = 0.5
                            spheres.append(new)
                            tips.append(new)
                        if tip in tips:
                            tips.remove(tip)
            return [s.position for s in spheres]

        return self._measure("neurite_growth", num_agents, iterations, body)
