"""Comparison baselines (paper §6.5, §6.6).

- :mod:`repro.baselines.cortex3d` — a Cortex3D-like engine: one Python
  object per agent, Delaunay-triangulation neighborhoods, per-agent
  interpreted loops, single-threaded.  Cortex3D is a Java framework with
  exactly this architecture (object-per-agent, Delaunay neighbors, no
  parallelism); the Python analogue reproduces its *architectural*
  overheads relative to our engine's packed, vectorized hot loops.
- :mod:`repro.baselines.netlogo` — a NetLogo-like engine: dictionary-based
  agents, string-keyed attribute access, per-agent command dispatch, patch
  grid — the interpreted general-purpose-tool overhead profile.
- :mod:`repro.baselines.biocellion` — Biocellion is proprietary; like the
  paper, we compare against the performance numbers published by
  Kang et al. 2014, recorded here as constants.
"""

from repro.baselines.base import BaselineEngine, BaselineResult
from repro.baselines.cortex3d import Cortex3DLike
from repro.baselines.netlogo import NetLogoLike
from repro.baselines.biocellion import BIOCELLION_PUBLISHED, BioDynaMoPaperReference

__all__ = [
    "BaselineEngine",
    "BaselineResult",
    "Cortex3DLike",
    "NetLogoLike",
    "BIOCELLION_PUBLISHED",
    "BioDynaMoPaperReference",
]
