"""Shared interface for the single-thread baseline engines."""

from __future__ import annotations

import time
import tracemalloc
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = ["BaselineResult", "BaselineEngine"]


@dataclass
class BaselineResult:
    """Measured outcome of a baseline engine run."""

    engine: str
    model: str
    num_agents: int
    iterations: int
    wall_seconds: float
    memory_bytes: int
    final_positions: np.ndarray


class BaselineEngine(ABC):
    """A deliberately naive single-threaded ABM engine.

    Subclasses implement the three models used in the paper's §6.6
    comparison.  ``measure`` wraps a run with wall-clock timing and
    tracemalloc-based peak memory measurement.
    """

    name: str = "baseline"

    @abstractmethod
    def run_proliferation(self, num_agents: int, iterations: int, seed: int = 0) -> BaselineResult:
        """Grow-and-divide tissue model."""

    @abstractmethod
    def run_epidemiology(self, num_agents: int, iterations: int, seed: int = 0) -> BaselineResult:
        """SIR model with random movement."""

    def _measure(self, model: str, num_agents: int, iterations: int, fn) -> BaselineResult:
        # Timing and memory are measured in separate runs: tracemalloc
        # inflates runtimes (especially allocation-heavy code) by an
        # engine-dependent factor, which would corrupt the comparison.
        t0 = time.perf_counter()
        positions = fn()
        wall = time.perf_counter() - t0
        tracemalloc.start()
        fn()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return BaselineResult(
            engine=self.name,
            model=model,
            num_agents=num_agents,
            iterations=iterations,
            wall_seconds=wall,
            memory_bytes=peak,
            final_positions=np.asarray(positions),
        )
