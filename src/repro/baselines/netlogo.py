"""NetLogo-like baseline engine.

NetLogo is an interpreted, easy-to-use general-purpose ABM tool: turtles
are dynamic records, model code is dispatched per agent per command, and
neighborhoods come from a patch grid scanned in interpreted code.  The
Python analogue uses dictionary-based agents with string-keyed attributes,
per-agent closure dispatch, and a dict-of-lists patch grid — reproducing
the interpretation overhead the paper's §6.6 comparison measures (NetLogo
only benefits from parallel garbage collection; the model loop is serial).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineEngine, BaselineResult

__all__ = ["NetLogoLike"]


class NetLogoLike(BaselineEngine):
    name = "netlogo_like"

    def __init__(self, dt: float = 0.01):
        self.dt = dt

    # ------------------------------------------------------------------ #
    # Patch grid helpers (NetLogo's world is a grid of patches)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _patch_of(turtle, patch_size):
        return (
            int(turtle["xcor"] // patch_size),
            int(turtle["ycor"] // patch_size),
            int(turtle["zcor"] // patch_size),
        )

    def _rebuild_patches(self, turtles, patch_size):
        patches: dict[tuple, list] = {}
        for t in turtles:
            patches.setdefault(self._patch_of(t, patch_size), []).append(t)
        return patches

    def _turtles_in_radius(self, turtle, patches, patch_size, radius):
        px, py, pz = self._patch_of(turtle, patch_size)
        out = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    for o in patches.get((px + dx, py + dy, pz + dz), ()):
                        if o is turtle:
                            continue
                        d = (
                            (turtle["xcor"] - o["xcor"]) ** 2
                            + (turtle["ycor"] - o["ycor"]) ** 2
                            + (turtle["zcor"] - o["zcor"]) ** 2
                        ) ** 0.5
                        if d <= radius:
                            out.append(o)
        return out

    # ------------------------------------------------------------------ #

    def run_proliferation(self, num_agents, iterations, seed=0) -> BaselineResult:
        def body():
            rng = np.random.default_rng(seed)
            initial = max(4, num_agents // 2)
            side = int(np.ceil(initial ** (1 / 3)))
            turtles = []
            for k in range(initial):
                x, r = divmod(k, side * side)
                y, z = divmod(r, side)
                turtles.append(
                    {"xcor": x * 12.0, "ycor": y * 12.0, "zcor": z * 12.0,
                     "size": 10.0, "who": k}
                )
            # NetLogo "ask turtles [ ... ]": per-agent command dispatch.
            def grow(t):
                t["size"] += 120.0 * self.dt

            def maybe_divide(t):
                if t["size"] >= 14.0 and len(turtles) < num_agents:
                    t["size"] /= 2 ** (1 / 3)
                    heading = rng.normal(size=3)
                    heading /= np.linalg.norm(heading)
                    turtles.append(
                        {"xcor": t["xcor"] + heading[0] * t["size"] / 2,
                         "ycor": t["ycor"] + heading[1] * t["size"] / 2,
                         "zcor": t["zcor"] + heading[2] * t["size"] / 2,
                         "size": t["size"], "who": len(turtles)}
                    )

            def repel(t, patches):
                for o in self._turtles_in_radius(t, patches, 14.0, 14.0):
                    d = (
                        (t["xcor"] - o["xcor"]) ** 2
                        + (t["ycor"] - o["ycor"]) ** 2
                        + (t["zcor"] - o["zcor"]) ** 2
                    ) ** 0.5
                    overlap = (t["size"] + o["size"]) / 2 - d
                    if overlap > 0 and d > 1e-12:
                        scale = 2.0 * overlap / d * self.dt
                        t["xcor"] += (t["xcor"] - o["xcor"]) * scale
                        t["ycor"] += (t["ycor"] - o["ycor"]) * scale
                        t["zcor"] += (t["zcor"] - o["zcor"]) * scale

            for _ in range(iterations):
                patches = self._rebuild_patches(turtles, 14.0)
                for command in (lambda t: repel(t, patches), grow, maybe_divide):
                    for t in list(turtles):
                        command(t)
            return [[t["xcor"], t["ycor"], t["zcor"]] for t in turtles]

        return self._measure("proliferation", num_agents, iterations, body)

    def run_epidemiology(self, num_agents, iterations, seed=0) -> BaselineResult:
        def body():
            rng = np.random.default_rng(seed)
            span = 6.0 * max(4.0, (num_agents ** (1 / 3)) * 3.0)
            turtles = [
                {"xcor": rng.uniform(0, span), "ycor": rng.uniform(0, span),
                 "zcor": rng.uniform(0, span), "state": "susceptible", "who": k}
                for k in range(num_agents)
            ]
            for t in turtles[: max(1, num_agents // 500)]:
                t["state"] = "infected"
            radius = 6.0

            def wiggle(t):
                t["xcor"] += rng.normal() * radius * 0.4
                t["ycor"] += rng.normal() * radius * 0.4
                t["zcor"] += rng.normal() * radius * 0.4

            def transmit(t, patches):
                if t["state"] != "infected":
                    return
                for o in self._turtles_in_radius(t, patches, radius, radius):
                    if o["state"] == "susceptible" and rng.random() < 0.25:
                        o["state"] = "infected"
                if rng.random() < 0.03:
                    t["state"] = "recovered"

            for _ in range(iterations):
                for t in turtles:
                    wiggle(t)
                patches = self._rebuild_patches(turtles, radius)
                for t in turtles:
                    transmit(t, patches)
            return [[t["xcor"], t["ycor"], t["zcor"]] for t in turtles]

        return self._measure("epidemiology", num_agents, iterations, body)
