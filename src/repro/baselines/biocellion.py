"""Biocellion published reference numbers (paper §6.5).

Biocellion is proprietary; neither the paper's authors nor we have its
code.  The paper therefore compares BioDynaMo against the performance
results *published* in Kang et al., Bioinformatics 30(21), 2014 — we record
those numbers (and the BioDynaMo-side numbers the paper reports, for
shape validation) as constants.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BiocellionDatum", "BIOCELLION_PUBLISHED", "BioDynaMoPaperReference"]


@dataclass(frozen=True)
class BiocellionDatum:
    """One published Biocellion cell-sorting measurement."""

    label: str
    num_agents: float
    cpu_cores: int
    seconds_per_iteration: float
    hardware: str

    @property
    def agent_iterations_per_core_second(self) -> float:
        """Throughput normalized by core count (the paper's efficiency
        metric behind the 4.14x / 9.64x claims)."""
        return self.num_agents / (self.seconds_per_iteration * self.cpu_cores)


#: Kang et al. 2014, cell sorting benchmark results used in §6.5.
BIOCELLION_PUBLISHED = {
    "small": BiocellionDatum(
        label="26.8M cells, 16 cores",
        num_agents=26.8e6,
        cpu_cores=16,
        seconds_per_iteration=7.48,
        hardware="2x Intel Xeon E5-2670 @ 2.6 GHz",
    ),
    "medium": BiocellionDatum(
        label="281.4M cells, 672 cores",
        num_agents=281.4e6,
        cpu_cores=672,
        seconds_per_iteration=4.37,
        hardware="21 nodes, extracted from Fig. 3b of Kang et al.",
    ),
    "large": BiocellionDatum(
        label="1.72B cells, 4096 cores",
        num_agents=1.72e9,
        cpu_cores=4096,
        seconds_per_iteration=26.3 / 5.90,  # paper: BioDynaMo is 5.90x slower
        hardware="128 nodes, 2x AMD Opteron 6271 @ 2.1 GHz each",
    ),
}


@dataclass(frozen=True)
class BioDynaMoPaperReference:
    """BioDynaMo-side §6.5 results, for validating our reproduction's shape."""

    #: 26.8M cells on System C limited to 16 cores.
    small_seconds_per_iteration: float = 1.80
    small_speedup_vs_biocellion: float = 4.14
    #: 1.72B cells on System B (72 cores).
    large_seconds_per_iteration: float = 26.3
    large_core_efficiency_vs_biocellion: float = 9.64
    #: 281.4M cells on System B.
    medium_seconds_per_iteration: float = 4.24
